//! Model twin of the collect-max **cached-max fast path**.
//!
//! [`CollectMaxFastModel`] mirrors
//! [`CollectMax::get_ts_fast_paused`](crate::CollectMax::get_ts_fast_paused)
//! access-for-access: registers `0..n` are the per-process SWMR
//! registers, register `n` is the shared cached maximum, and the cache
//! advances through [`ts_model::Poised::Cas`] steps — the atomic RMW
//! that makes the fast path sound (a read-then-write rendition would
//! model a *different, broken* algorithm whose lost-update race the
//! checker would rightly flag).
//!
//! The twin exists to *prove the fast path never returns a stale max*:
//! the Explorer and PCT sweeps in `tests/model_check.rs` exhaust its
//! interleavings — including a call stalling between its cache CAS and
//! its register write while others complete — and the checked-in
//! regression trace (`tests/traces/collect_max_fast_n2_stalled_cas.json`)
//! replays one such adversarial schedule against the real object.

use ts_model::{Algorithm, Machine, Poised, ProcId};

use crate::timestamp::Timestamp;

/// Step machine for one fast-path collect-max `getTS()` call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CollectMaxFastMachine {
    pid: usize,
    n: usize,
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Load the cached maximum (register `n`).
    ReadCache,
    /// Try to advance the cache `m -> m + 1`.
    TryFast {
        m: u64,
    },
    /// CAS landed: publish `t` in the own register, then return.
    WriteOwnFast {
        t: u64,
    },
    /// CAS lost — classic collect over registers `0..n`.
    Collect {
        i: usize,
        max: u64,
    },
    /// Collect done: write `t = max + 1` to the own register.
    WriteOwnSlow {
        t: u64,
    },
    /// Slow-path cache publication: load the cache once...
    AdvanceRead {
        t: u64,
    },
    /// ...then CAS it up to `t` until it is `>= t` (fetch-max spelled
    /// out as a CAS retry chain, exactly like the implementation).
    AdvanceCas {
        expected: u64,
        t: u64,
    },
    Finished {
        t: u64,
    },
}

impl CollectMaxFastMachine {
    /// Creates the machine for process `pid` of an `n`-process object.
    pub fn new(pid: ProcId, n: usize) -> Self {
        assert!(pid < n);
        Self {
            pid,
            n,
            phase: Phase::ReadCache,
        }
    }
}

impl Machine for CollectMaxFastMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::ReadCache => Poised::Read { reg: self.n },
            Phase::TryFast { m } => Poised::Cas {
                reg: self.n,
                expected: *m,
                new: m + 1,
            },
            Phase::WriteOwnFast { t } | Phase::WriteOwnSlow { t } => Poised::Write {
                reg: self.pid,
                value: *t,
            },
            Phase::Collect { i, .. } => Poised::Read { reg: *i },
            Phase::AdvanceRead { .. } => Poised::Read { reg: self.n },
            Phase::AdvanceCas { expected, t } => Poised::Cas {
                reg: self.n,
                expected: *expected,
                new: *t,
            },
            Phase::Finished { t } => Poised::Done(Timestamp::scalar(*t)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        self.phase = match (&self.phase, observed) {
            (Phase::ReadCache, Some(m)) => Phase::TryFast { m },
            (Phase::TryFast { m }, Some(prior)) => {
                if prior == *m {
                    // Swap landed: we own t = m + 1.
                    Phase::WriteOwnFast { t: m + 1 }
                } else {
                    // Validation failed: full collect fallback, seeded
                    // with the cache value the failed CAS observed —
                    // the cache can transiently exceed every register
                    // (a fast-path caller between its CAS and its
                    // register write), and folding it in keeps every
                    // observed cache value a floor for later outputs.
                    Phase::Collect { i: 0, max: prior }
                }
            }
            (Phase::WriteOwnFast { t }, None) => Phase::Finished { t: *t },
            (Phase::Collect { i, max }, Some(v)) => {
                let max = (*max).max(v);
                if i + 1 < self.n {
                    Phase::Collect { i: i + 1, max }
                } else {
                    Phase::WriteOwnSlow { t: max + 1 }
                }
            }
            (Phase::WriteOwnSlow { t }, None) => Phase::AdvanceRead { t: *t },
            (Phase::AdvanceRead { t }, Some(c)) => {
                if c >= *t {
                    Phase::Finished { t: *t }
                } else {
                    Phase::AdvanceCas { expected: c, t: *t }
                }
            }
            (Phase::AdvanceCas { expected, t }, Some(prior)) => {
                if prior == *expected || prior >= *t {
                    // Swap landed, or someone else pushed the cache
                    // past t — either way publication is done.
                    Phase::Finished { t: *t }
                } else {
                    Phase::AdvanceCas {
                        expected: prior,
                        t: *t,
                    }
                }
            }
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }

    // DPOR footprints. A lost fast-path CAS falls back to the full
    // collect, so any phase that can still reach `Collect` must list
    // registers `0..n` as readable; every phase up to the own-register
    // write keeps `pid` writable, and every phase that can still touch
    // the cache (CAS chains included) keeps `n` on both sides.
    fn may_read(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::ReadCache | Phase::TryFast { .. } => (0..=self.n).collect(),
            Phase::Collect { i, .. } => (*i..self.n).chain([self.n]).collect(),
            Phase::WriteOwnSlow { .. } | Phase::AdvanceRead { .. } | Phase::AdvanceCas { .. } => {
                vec![self.n]
            }
            Phase::WriteOwnFast { .. } | Phase::Finished { .. } => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::ReadCache
            | Phase::TryFast { .. }
            | Phase::Collect { .. }
            | Phase::WriteOwnSlow { .. } => vec![self.pid, self.n],
            Phase::AdvanceRead { .. } | Phase::AdvanceCas { .. } => vec![self.n],
            Phase::WriteOwnFast { .. } => vec![self.pid],
            Phase::Finished { .. } => vec![],
        })
    }
}

/// Model algorithm: the cached-max fast path over `n` SWMR registers
/// plus one shared cache register (index `n`).
#[derive(Debug, Clone)]
pub struct CollectMaxFastModel {
    n: usize,
}

impl CollectMaxFastModel {
    /// Creates the model for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }
}

impl Algorithm for CollectMaxFastModel {
    type Machine = CollectMaxFastMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        self.n + 1 // n SWMR registers + the shared cache
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> CollectMaxFastMachine {
        CollectMaxFastMachine::new(pid, self.n)
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        None // long-lived
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some((0..=self.n).collect())
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![pid, self.n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, RandomScheduler, System};

    #[test]
    fn solo_calls_take_the_fast_path_and_count_up() {
        let mut sys = System::new(CollectMaxFastModel::new(2));
        // Solo: read cache, CAS (succeeds), write own, return = 4 steps
        // after the invoke.
        assert_eq!(
            sys.run_solo_to_completion(0, 10).unwrap(),
            Timestamp::scalar(1)
        );
        assert_eq!(
            sys.run_solo_to_completion(1, 10).unwrap(),
            Timestamp::scalar(2)
        );
        assert_eq!(
            sys.run_solo_to_completion(0, 10).unwrap(),
            Timestamp::scalar(3)
        );
    }

    #[test]
    fn lost_cas_falls_back_to_the_collect() {
        let mut sys = System::new(CollectMaxFastModel::new(2));
        // p0: invoke, read cache (0), then stall before its CAS.
        sys.step(0).unwrap();
        sys.step(0).unwrap();
        // p1 completes a whole fast-path op: cache is now 1.
        sys.run_solo_to_completion(1, 10).unwrap();
        // p0's CAS(0 -> 1) now fails; it must collect and finish with 2.
        let out = sys.run_solo_to_completion(0, 20).unwrap();
        assert_eq!(out, Timestamp::scalar(2));
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn exhaustive_check_two_processes_two_ops_each() {
        let report = Explorer::new(CollectMaxFastModel::new(2), 2).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn exhaustive_check_three_processes_one_op() {
        let report = Explorer::new(CollectMaxFastModel::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn random_long_lived_runs() {
        for seed in 0..10 {
            let report = RandomScheduler::new(seed)
                .ops_per_process(3)
                .run(CollectMaxFastModel::new(5));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 15);
        }
    }
}
