//! Step-machine renditions of the paper's algorithms for the formal
//! model of `ts-model`.
//!
//! Every concrete algorithm in this crate has a twin here, expressed as
//! a deterministic [`ts_model::Machine`]: the twin is what the
//! exhaustive explorer model-checks and what the covering constructions
//! of `ts-lowerbound` drive. The twins follow the pseudocode
//! line-by-line, so checking them checks the algorithm, not a
//! re-derivation.

mod bounded;
mod broken;
mod collectmax;
mod collectmax_fast;
mod helping_scan;
mod simple;

pub use bounded::{BoundedMachine, BoundedModel};
pub use broken::{BrokenCounterMachine, BrokenCounterModel};
pub use collectmax::{CollectMaxMachine, CollectMaxModel};
pub use collectmax_fast::{CollectMaxFastMachine, CollectMaxFastModel};
pub use helping_scan::{HelpingScanMachine, HelpingScanModel};
pub use simple::{SimpleMachine, SimpleModel};
