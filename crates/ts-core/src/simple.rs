//! The simple one-shot algorithm of Section 5 (Algorithms 1–2).
//!
//! `⌈n/2⌉` registers, each shared by a *pair* of processes and holding a
//! value in `{0, 1, 2}`. `simple-getTS()` by process `p` walks the array
//! in order; at `p`'s own register it increments the value; the returned
//! timestamp is the sum of all values it observed. `simple-compare` is
//! plain `<` on the sums.
//!
//! Correctness (Lemma 5.1) hinges on one-shot-ness: a register only ever
//! steps `0 → 1 → 2` (a process writes 2 only after observing its
//! partner's 1), so register values — and therefore sums — never
//! decrease, and a later `getTS` additionally counts its own increment.
//!
//! Because every register value fits two bits, the object defaults to
//! the word-inlined [`PackedBackend`]: each register operation is a
//! single hardware atomic, with no heap traffic and no epoch pinning.
//! The epoch-backed variant ([`EpochSimpleOneShot`]) exists for
//! apples-to-apples substrate comparisons in `bench_contention`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use ts_register::{BackendRegister, EpochBackend, PackedBackend, RegisterBackend, SpaceMeter};

use crate::error::GetTsError;
use crate::timestamp::Timestamp;
use crate::traits::OneShotTimestamp;

/// One-shot timestamp object using `⌈n/2⌉` registers (Algorithms 1–2),
/// generic over the register storage backend.
///
/// # Example
///
/// ```
/// use ts_core::{OneShotTimestamp, SimpleOneShot, Timestamp};
///
/// let ts = SimpleOneShot::new(6); // 3 registers
/// assert_eq!(ts.registers(), 3);
/// let a = ts.get_ts(0).unwrap();
/// let b = ts.get_ts(1).unwrap();
/// assert!(Timestamp::compare(&a, &b));
/// ```
pub struct SimpleOneShot<B: RegisterBackend<u64> = PackedBackend> {
    registers: Vec<B::Reg>,
    used: Vec<AtomicBool>,
    meter: SpaceMeter,
    processes: usize,
}

/// [`SimpleOneShot`] over epoch-reclaimed heap-cell registers — same
/// algorithm, heavier substrate; used to quantify the packed backend's
/// advantage.
pub type EpochSimpleOneShot = SimpleOneShot<EpochBackend>;

impl SimpleOneShot<PackedBackend> {
    /// Creates an object for `processes` processes using `⌈n/2⌉`
    /// word-inlined registers (the default backend).
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn new(processes: usize) -> Self {
        Self::with_backend(processes)
    }
}

impl<B: RegisterBackend<u64>> SimpleOneShot<B> {
    /// Creates an object for `processes` processes using `⌈n/2⌉`
    /// registers on the backend `B`.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn with_backend(processes: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        let m = processes.div_ceil(2);
        Self {
            registers: (0..m).map(|_| B::Reg::with_initial(0)).collect(),
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
            meter: SpaceMeter::new(m),
            processes,
        }
    }

    /// The meter recording this object's register traffic.
    pub fn meter(&self) -> &SpaceMeter {
        &self.meter
    }

    /// Read-only walk over all registers, returning the sum of observed
    /// values — the observation half of `get_ts`, without the increment.
    ///
    /// Any timestamp issued before this call started has value at most
    /// `observed_sum() + ⌈n/2⌉` (each register adds at most 2). Used as
    /// the workload engine's *scan* operation.
    pub fn observed_sum(&self) -> u64 {
        (0..self.registers.len()).map(|i| self.read(i)).sum()
    }

    fn read(&self, i: usize) -> u64 {
        self.meter.record_read(i);
        ts_register::Register::read(&self.registers[i])
    }

    fn write(&self, i: usize, v: u64) {
        self.meter.record_write(i);
        ts_register::Register::write(&self.registers[i], v);
    }
}

impl<B: RegisterBackend<u64>> OneShotTimestamp for SimpleOneShot<B> {
    /// Algorithm 2: walk all registers, incrementing one's own; return
    /// the sum of observed values as a scalar timestamp.
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        if pid >= self.processes {
            return Err(GetTsError::PidOutOfRange {
                pid,
                processes: self.processes,
            });
        }
        if self.used[pid].swap(true, Ordering::AcqRel) {
            return Err(GetTsError::AlreadyUsed { pid });
        }
        // Register i is written by processes 2i and 2i+1 (0-indexed).
        let own = pid / 2;
        let mut sum = 0u64;
        for i in 0..self.registers.len() {
            if i == own {
                // R[i] := R[i] + 1, then sum := sum + R[i] — read,
                // write, re-read, exactly as in the pseudocode.
                let v = self.read(i);
                self.write(i, v + 1);
                sum += self.read(i);
            } else {
                sum += self.read(i);
            }
        }
        Ok(Timestamp::scalar(sum))
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn registers(&self) -> usize {
        self.registers.len()
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for SimpleOneShot<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimpleOneShot")
            .field("processes", &self.processes)
            .field("registers", &self.registers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_count_is_half_n_rounded_up() {
        assert_eq!(SimpleOneShot::new(1).registers(), 1);
        assert_eq!(SimpleOneShot::new(2).registers(), 1);
        assert_eq!(SimpleOneShot::new(5).registers(), 3);
        assert_eq!(SimpleOneShot::new(8).registers(), 4);
    }

    #[test]
    fn sequential_timestamps_strictly_increase() {
        let ts = SimpleOneShot::new(8);
        let mut last = None;
        for p in 0..8 {
            let t = ts.get_ts(p).unwrap();
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "p{p}: {prev} !< {t}");
            }
            last = Some(t);
        }
    }

    #[test]
    fn epoch_backend_behaves_identically_sequentially() {
        let ts = EpochSimpleOneShot::with_backend(8);
        assert_eq!(ts.registers(), 4);
        let mut last = None;
        for p in 0..8 {
            let t = ts.get_ts(p).unwrap();
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "p{p}: {prev} !< {t}");
            }
            last = Some(t);
        }
    }

    #[test]
    fn second_call_is_rejected() {
        let ts = SimpleOneShot::new(2);
        ts.get_ts(0).unwrap();
        assert_eq!(ts.get_ts(0), Err(GetTsError::AlreadyUsed { pid: 0 }));
    }

    #[test]
    fn out_of_range_pid_is_rejected() {
        let ts = SimpleOneShot::new(2);
        assert!(matches!(
            ts.get_ts(5),
            Err(GetTsError::PidOutOfRange { pid: 5, .. })
        ));
    }

    #[test]
    fn register_values_never_exceed_two() {
        let ts = SimpleOneShot::new(6);
        for p in 0..6 {
            ts.get_ts(p).unwrap();
        }
        for i in 0..ts.registers() {
            let v = ts.read(i);
            assert!(v <= 2, "register {i} = {v}");
        }
    }

    #[test]
    fn space_meter_reports_all_registers_written() {
        let ts = SimpleOneShot::new(7);
        for p in 0..7 {
            ts.get_ts(p).unwrap();
        }
        let snap = ts.meter().snapshot();
        assert_eq!(snap.registers_written(), 4); // ⌈7/2⌉
    }

    #[test]
    fn concurrent_rounds_respect_happens_before() {
        // Round 1: half the processes take timestamps concurrently.
        // Round 2 (strictly after): the rest. Every round-2 timestamp
        // must compare above every round-1 timestamp. Run on both
        // backends: the packed default and the epoch substrate.
        fn run<B: RegisterBackend<u64>>() {
            let n = 16;
            let ts = Arc::new(SimpleOneShot::<B>::with_backend(n));
            let round1: Vec<Timestamp> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n / 2)
                    .map(|p| {
                        let ts = Arc::clone(&ts);
                        s.spawn(move |_| ts.get_ts(p).unwrap())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            let round2: Vec<Timestamp> = crossbeam::scope(|s| {
                let handles: Vec<_> = (n / 2..n)
                    .map(|p| {
                        let ts = Arc::clone(&ts);
                        s.spawn(move |_| ts.get_ts(p).unwrap())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            for a in &round1 {
                for b in &round2 {
                    assert!(Timestamp::compare(a, b), "{a} !< {b}");
                    assert!(!Timestamp::compare(b, a), "{b} < {a}");
                }
            }
        }
        run::<PackedBackend>();
        run::<EpochBackend>();
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = SimpleOneShot::new(0);
    }
}
