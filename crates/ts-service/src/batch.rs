//! [`ShardBatch`]: a reservation of consecutive sharded stamps.

use ts_core::ShardedTimestamp;

/// A reservation of `k` consecutive stamps on one shard — an iterator
/// yielding [`ShardedTimestamp`]s in strictly increasing order.
///
/// The whole range was reserved by a single successful CAS on the
/// shard's `(epoch, local)` word, so distinct batches on one shard
/// never overlap, and the full range shares one epoch (a reservation
/// that would cross the 32-bit `local` boundary bumps the epoch and
/// starts fresh instead — see `shard::advance`).
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// Next packed word to yield.
    next: u64,
    /// Last packed word in the reservation (inclusive).
    last: u64,
    /// The issuing shard.
    shard: u32,
}

impl ShardBatch {
    pub(crate) fn new(first: u64, last: u64, shard: u32) -> Self {
        debug_assert!(first <= last, "empty reservation");
        debug_assert_eq!(
            first >> 32,
            last >> 32,
            "a reservation never spans an epoch boundary"
        );
        Self {
            next: first,
            last,
            shard,
        }
    }

    /// The smallest stamp in the batch (named to avoid shadowing the
    /// consuming [`Iterator::last`], mirroring
    /// [`StampBatch`](ts_core::StampBatch)).
    pub fn first_stamp(&self) -> ShardedTimestamp {
        ShardedTimestamp::from_word(self.next, self.shard)
    }

    /// The largest stamp in the batch (what the issuer published to its
    /// leased register — the client's new floor).
    pub fn last_stamp(&self) -> ShardedTimestamp {
        ShardedTimestamp::from_word(self.last, self.shard)
    }

    /// The issuing shard.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Stamps remaining to be yielded.
    pub fn remaining(&self) -> usize {
        (self.last + 1 - self.next) as usize
    }
}

impl Iterator for ShardBatch {
    type Item = ShardedTimestamp;

    fn next(&mut self) -> Option<ShardedTimestamp> {
        if self.next > self.last {
            return None;
        }
        let t = ShardedTimestamp::from_word(self.next, self.shard);
        self.next += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for ShardBatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_yields_consecutive_increasing_stamps() {
        let first = ShardedTimestamp::new(2, 5, 1).word();
        let last = ShardedTimestamp::new(2, 8, 1).word();
        let batch = ShardBatch::new(first, last, 1);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.first_stamp(), ShardedTimestamp::new(2, 5, 1));
        assert_eq!(batch.last_stamp(), ShardedTimestamp::new(2, 8, 1));
        let stamps: Vec<_> = batch.collect();
        assert_eq!(stamps.len(), 4);
        for pair in stamps.windows(2) {
            assert!(ShardedTimestamp::compare(&pair[0], &pair[1]));
        }
        assert_eq!(stamps[3].local, 8);
    }

    #[test]
    fn exact_size_tracks_consumption() {
        let first = ShardedTimestamp::new(0, 1, 0).word();
        let last = ShardedTimestamp::new(0, 3, 0).word();
        let mut batch = ShardBatch::new(first, last, 0);
        assert_eq!(batch.remaining(), 3);
        batch.next().unwrap();
        assert_eq!(batch.remaining(), 2);
        assert_eq!(batch.count(), 2);
    }
}
