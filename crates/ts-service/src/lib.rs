//! A *timestamp service* layered over the collect-max substrate:
//! sharding, batching, flat combining and virtual-pid multiplexing.
//!
//! The paper (Helmi–Higham–Pacheco–Woelfel, PODC 2011) proves that a
//! long-lived timestamp object for `n` processes needs Ω(n) registers
//! and that its full timestamp property — *every* pair of
//! non-overlapping `getTS` calls is ordered — pins all traffic onto one
//! logical maximum. This crate explores the engineering space just past
//! that bound: what a timestamp *service* can do once the guarantee is
//! relaxed from "ordered across all clients" to
//!
//! 1. a **total order** on all issued stamps (lexicographic on
//!    [`ShardedTimestamp`](ts_core::ShardedTimestamp) — antisymmetric,
//!    transitive, shared-memory-free to evaluate), and
//! 2. **per-client monotonicity**: every stamp a client obtains is
//!    strictly larger than its previous one, across batches, combining
//!    passes and shard migrations.
//!
//! That relaxation is exactly what lets the hot path escape the single
//! contended maximum:
//!
//! - [`ShardedCollectMax`] partitions the service into `S` independent
//!   *shard domains*. Each shard owns one packed `(epoch, local)`
//!   reservation word plus its own bank of `n` single-writer registers
//!   (each domain still pays the paper's per-domain register bill — the
//!   lower bound is respected shard-wise, not dodged).
//! - [`ClientSession::get_ts_batch`] reserves `k` consecutive stamps
//!   with **one** CAS, amortizing the shared-memory cost `k`-fold.
//! - [`ClientSession::get_ts_combined`] routes requests through a
//!   *flat-combining* publication array: one winner drains every
//!   waiting peer's request and serves the whole set with a single
//!   reservation.
//! - Sessions are keyed by *virtual pids*
//!   ([`VpidAllocator`](ts_core::VpidAllocator)) and borrow a physical
//!   register slot only for the duration of a call, so `M` clients run
//!   over `n` physical slots — space scales with the shard
//!   configuration, not the client population.
//!
//! Every hot-path event is counted in a
//! [`ServiceStats`](ts_core::ServiceStats) snapshot
//! ([`ShardedCollectMax::stats`]) so benchmarks report fast-hit /
//! batch-fill / combine-fill ratios instead of opaque throughput.
//!
//! # Example
//!
//! ```
//! use ts_core::ShardedTimestamp;
//! use ts_service::{ServiceConfig, ShardedCollectMax};
//!
//! let service = ShardedCollectMax::new(ServiceConfig::new(4, 2));
//! let mut session = service.session();
//! let a = session.get_ts();
//! let batch = session.get_ts_batch(16);
//! assert_eq!(batch.len(), 16);
//! session.migrate((session.shard() + 1) % 4);
//! let b = session.get_ts();
//! // Per-client monotonicity survives batching and migration.
//! assert!(ShardedTimestamp::compare(&a, &b));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod combining;
mod pool;
mod service;
mod session;
mod shard;

pub use batch::ShardBatch;
pub use service::ShardedCollectMax;
pub use session::ClientSession;

/// Shape of a [`ShardedCollectMax`]: how many independent shard domains
/// and how many physical register slots each domain owns.
///
/// Total register space is `shards * slots_per_shard` `(epoch, local)`
/// register pairs (plus one reservation word per shard) — fixed at
/// construction, independent of how many client sessions are ever
/// minted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Independent shard domains (`S >= 1`). Each issues stamps from
    /// its own `(epoch, local)` word; more shards means less CAS
    /// contention and a coarser cross-client order.
    pub shards: usize,
    /// Physical register slots per shard (`n >= 1`). Bounds how many
    /// clients can be *mid-call* on one shard at once; excess callers
    /// wait for a slot lease (counted as
    /// [`lease_waits`](ts_core::ServiceStats::lease_waits)).
    pub slots_per_shard: usize,
}

impl ServiceConfig {
    /// A configuration with `shards` domains of `slots_per_shard` slots.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `shards` exceeds `u32`
    /// range (shard ids live in the
    /// [`ShardedTimestamp::shard`](ts_core::ShardedTimestamp) field).
    pub fn new(shards: usize, slots_per_shard: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(slots_per_shard >= 1, "need at least one slot per shard");
        assert!(u32::try_from(shards).is_ok(), "shard ids must fit u32");
        Self {
            shards,
            slots_per_shard,
        }
    }

    /// Total physical registers: each slot owns an `(epoch, local)`
    /// register pair (both halves within the packed backend's 32-bit
    /// budget), so `shards * slots_per_shard * 2`.
    pub fn registers(&self) -> usize {
        self.shards * self.slots_per_shard * 2
    }
}

/// How a workload driver asks a session for stamps — the service's mode
/// vocabulary, shared with the `ts-workloads` adapters and the bench
/// grid labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueMode {
    /// One stamp per call ([`ClientSession::get_ts`]): one slot lease +
    /// one CAS + one register write per stamp.
    Single,
    /// `k` consecutive stamps per call
    /// ([`ClientSession::get_ts_batch`]): the same shared-memory cost,
    /// amortized `k`-fold.
    Batch(u32),
    /// One stamp per call through the flat-combining publication array
    /// ([`ClientSession::get_ts_combined`]): under contention one
    /// combiner's CAS serves every waiting peer.
    Combining,
}

impl IssueMode {
    /// Stamps issued per call in this mode.
    pub fn stamps_per_call(&self) -> u64 {
        match self {
            IssueMode::Single | IssueMode::Combining => 1,
            IssueMode::Batch(k) => u64::from(*k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_counts_registers() {
        let cfg = ServiceConfig::new(4, 8);
        assert_eq!(cfg.registers(), 64, "an (epoch, local) pair per slot");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn config_rejects_zero_shards() {
        ServiceConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn config_rejects_zero_slots() {
        ServiceConfig::new(1, 0);
    }

    #[test]
    fn issue_modes_report_stamps_per_call() {
        assert_eq!(IssueMode::Single.stamps_per_call(), 1);
        assert_eq!(IssueMode::Batch(16).stamps_per_call(), 16);
        assert_eq!(IssueMode::Combining.stamps_per_call(), 1);
    }
}
