//! One shard domain: a packed `(epoch, local)` reservation word, a bank
//! of single-writer registers, a slot pool and a combining array.
//!
//! # The reservation word
//!
//! Each shard issues stamps from a single `AtomicU64` holding
//! `epoch << 32 | local` — packed exactly so that *word order equals
//! `(epoch, local)` order* ([`ShardedTimestamp::word`]). Everything the
//! shard does is a monotone operation on that word:
//!
//! - **reserve** (`k` stamps): CAS from `w` to `advance(max(w, floor), k)`
//!   — the winner owns the exclusive word range
//!   `(base, advance(base, k)]`;
//! - **floor fold** (client carries a stamp from elsewhere):
//!   `fetch_max(w, floor)` — after which any reservation exceeds the
//!   folded floor;
//! - **epoch bump** (`local` about to overflow 32 bits, or an
//!   administrative rebalance): jump to `(epoch + 1, k)` — still a
//!   plain word increase, because epoch sits in the high half.
//!
//! Uniqueness of reserved ranges needs only CAS atomicity: every
//! successful CAS reads the word it replaces, so successful
//! reservations form a chain of disjoint intervals. There is no collect
//! fallback on this path — reservation-issued stamps are globally
//! unique, not merely ordered.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ts_register::{
    ArrayLayout, BackendRegister, CachePadded, Register, RegisterBackend, Slots, SpaceMeter,
};

use crate::combining::{backoff, PubCell};
use crate::pool::SlotPool;

/// Largest value of the packed word's `local` half.
const LOCAL_MAX: u64 = u32::MAX as u64;

/// Advances a packed `(epoch, local)` word by `k` stamps, bumping the
/// epoch instead of letting `local` overflow its 32-bit half. The
/// result is always strictly greater than `base` (word order), and the
/// reserved range `(base-or-bump, result]` never spans an epoch.
pub(crate) fn advance(base: u64, k: u64) -> u64 {
    debug_assert!(k >= 1 && k <= LOCAL_MAX, "batch size must fit local space");
    let local = base & LOCAL_MAX;
    if local + k > LOCAL_MAX {
        let epoch = base >> 32;
        assert!(epoch < LOCAL_MAX, "epoch space exhausted");
        ((epoch + 1) << 32) | k
    } else {
        base + k
    }
}

/// The word range one successful reservation CAS won: stamps
/// `first..=last` (packed words, one epoch), plus whether the CAS
/// succeeded on its first attempt (the fast-path signal).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reservation {
    pub(crate) first: u64,
    pub(crate) last: u64,
    pub(crate) fast: bool,
}

/// What a combining call produced: the granted range, plus pass
/// accounting if *this* caller became the combiner (`served` requests
/// drained — including its own — and whether the pass's one reservation
/// CAS hit on the first attempt).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CombinedGrant {
    pub(crate) first: u64,
    pub(crate) last: u64,
    pub(crate) pass: Option<Pass>,
}

/// Accounting for one combiner pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pass {
    pub(crate) served: u64,
    pub(crate) fast: bool,
}

/// One shard domain. See the module docs for the word protocol; the
/// register bank, slot pool and publication array are all sized to the
/// same `slots_per_shard`.
pub(crate) struct Shard<B: RegisterBackend<u64>> {
    /// The packed `(epoch, local)` reservation word. Padded: this is
    /// the shard's contention point and must not share a line with any
    /// register or a neighbouring shard's word.
    word: CachePadded<AtomicU64>,
    /// Single-writer `local` registers, one per slot: the lease holder
    /// publishes the low half of the last word it issued. Register
    /// contents stay within the packed backend's 32-bit budget because
    /// the word is published as an `(epoch, local)` *pair* — see
    /// [`Shard::publish`] for the write ordering that keeps observed
    /// pairs from over-reporting the frontier.
    locals: Slots<B::Reg>,
    /// Single-writer `epoch` registers, paired with `locals`.
    epochs: Slots<B::Reg>,
    meter: SpaceMeter,
    /// Slot leases (also gate the publication cells: cell `i` is owned
    /// by the lease of slot `i`).
    pub(crate) pool: SlotPool,
    /// Flat-combining publication cells, one per slot.
    pubs: Vec<CachePadded<PubCell>>,
    /// The combiner try-lock.
    combiner: CachePadded<AtomicBool>,
    /// Stamps issued by this shard (the imbalance signal).
    stamps: CachePadded<AtomicU64>,
}

impl<B: RegisterBackend<u64>> Shard<B> {
    pub(crate) fn new(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
            locals: Slots::new(ArrayLayout::Padded, slots, |_| B::Reg::with_initial(0)),
            epochs: Slots::new(ArrayLayout::Padded, slots, |_| B::Reg::with_initial(0)),
            // Meter indexes: `slot` for the local register, `slots +
            // slot` for its epoch partner.
            meter: SpaceMeter::new(2 * slots),
            pool: SlotPool::new(slots),
            pubs: (0..slots)
                .map(|_| CachePadded::new(PubCell::default()))
                .collect(),
            combiner: CachePadded::new(AtomicBool::new(false)),
            stamps: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The current packed word (diagnostics; the frontier of issued
    /// stamps).
    pub(crate) fn word(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Folds an external floor into the word: afterwards every
    /// reservation on this shard returns stamps strictly above `floor`.
    pub(crate) fn raise_floor(&self, floor: u64) {
        self.word.fetch_max(floor, Ordering::AcqRel);
    }

    /// Reserves `k` consecutive stamps above both the current word and
    /// `floor` with one successful CAS.
    pub(crate) fn reserve(&self, floor: u64, k: u64) -> Reservation {
        let mut cur = self.word.load(Ordering::Acquire);
        let mut fast = true;
        loop {
            let base = cur.max(floor);
            let next = advance(base, k);
            match self
                .word
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                // `next - k + 1` is the range's first word in both
                // shapes: plain advance (base + 1) and epoch bump
                // ((epoch+1, 1)).
                Ok(_) => {
                    return Reservation {
                        first: next - k + 1,
                        last: next,
                        fast,
                    }
                }
                Err(now) => {
                    cur = now;
                    fast = false;
                }
            }
        }
    }

    /// Publishes `word` to the slot's `(epoch, local)` register pair
    /// if it exceeds the pair's current value. The lease serializes
    /// writers per slot, so the read-check-write is safe; skipping
    /// non-advances keeps the published word monotone even though
    /// different clients (with different floors) time-share the slot.
    ///
    /// Write ordering: `local` lands **before** `epoch`. Combined with
    /// the collect's epoch-before-local read order, every observed pair
    /// `(e_r, l_r)` satisfies `e_r <= ` the epoch `l_r` was issued
    /// under, so no collect ever reports a stamp above the reservation
    /// frontier — without any read-retry loop.
    fn publish(&self, slot: usize, word: u64) {
        let (epoch, local) = (word >> 32, word & LOCAL_MAX);
        self.meter.record_read(self.locals.len() + slot);
        let cur_epoch = Register::read(self.epochs.get(slot));
        if cur_epoch > epoch {
            return;
        }
        if cur_epoch == epoch {
            self.meter.record_read(slot);
            if Register::read(self.locals.get(slot)) >= local {
                return;
            }
        }
        self.meter.record_write(slot);
        Register::write(self.locals.get(slot), local);
        if cur_epoch < epoch {
            self.meter.record_write(self.locals.len() + slot);
            Register::write(self.epochs.get(slot), epoch);
        }
    }

    /// Reserves `k` stamps above `floor` and publishes the range's top
    /// to the leased slot's register.
    pub(crate) fn get_batch(&self, slot: usize, floor: u64, k: u64) -> Reservation {
        let res = self.reserve(floor, k);
        self.publish(slot, res.last);
        self.stamps.fetch_add(k, Ordering::Relaxed);
        res
    }

    /// Requests `k` stamps through the flat-combining array: publishes
    /// the request in the leased slot's cell, then either a peer
    /// combiner serves it or this caller wins the combiner lock and
    /// drains every published request with one reservation.
    pub(crate) fn get_combined(&self, slot: usize, floor: u64, k: u64) -> CombinedGrant {
        // Pre-raise the floor so *whichever* combiner serves this
        // request reserves above it.
        if floor != 0 {
            self.raise_floor(floor);
        }
        self.pubs[slot].publish(k);
        let mut pass = None;
        let mut spins = 0;
        let first = loop {
            if let Some(first) = self.pubs[slot].poll() {
                break first;
            }
            if !self.combiner.load(Ordering::Relaxed)
                && self
                    .combiner
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                pass = self.combine_pass();
                self.combiner.store(false, Ordering::Release);
                // Our request was either drained by this pass or served
                // by the previous lock holder before we acquired it;
                // either way the grant is visible now.
                let first = self.pubs[slot].poll().expect("combiner pass serves itself");
                break first;
            }
            backoff(&mut spins);
        };
        let last = first + (k - 1);
        self.publish(slot, last);
        CombinedGrant { first, last, pass }
    }

    /// One combiner pass (lock held by the caller): drains every
    /// published request, reserves the sum with one CAS, distributes
    /// consecutive sub-ranges. Returns `None` if no request was pending
    /// (the caller's own was served by the previous lock holder).
    fn combine_pass(&self) -> Option<Pass> {
        let mut requests: Vec<(usize, u64)> = Vec::with_capacity(self.pubs.len());
        let mut total = 0u64;
        for (i, cell) in self.pubs.iter().enumerate() {
            let k = cell.pending();
            if k > 0 {
                requests.push((i, k));
                total += k;
            }
        }
        if total == 0 {
            return None;
        }
        // Floors were folded by each peer before publishing, so the
        // pass reserves with floor 0.
        let res = self.reserve(0, total);
        let mut next = res.first;
        for (i, k) in requests.iter().copied() {
            self.pubs[i].serve(next);
            next += k;
        }
        self.stamps.fetch_add(total, Ordering::Relaxed);
        Some(Pass {
            served: requests.len() as u64,
            fast: res.fast,
        })
    }

    /// Collect over the register bank: the largest published word, or
    /// `None` if nothing was published yet. A read-only observation
    /// pass (`2n` metered reads), lower-bounding the reservation
    /// frontier [`Shard::word`] — reading each pair epoch-before-local
    /// (see [`Shard::publish`] for why that never over-reports).
    pub(crate) fn collect_max_word(&self) -> Option<u64> {
        let mut max = 0;
        for slot in 0..self.locals.len() {
            self.meter.record_read(self.locals.len() + slot);
            let epoch = Register::read(self.epochs.get(slot));
            self.meter.record_read(slot);
            let local = Register::read(self.locals.get(slot));
            max = max.max((epoch << 32) | local);
        }
        (max > 0).then_some(max)
    }

    /// Stamps issued by this shard so far.
    pub(crate) fn stamps(&self) -> u64 {
        self.stamps.load(Ordering::Relaxed)
    }

    /// The shard's register-traffic meter.
    pub(crate) fn meter(&self) -> &SpaceMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_register::PackedBackend;

    fn word(epoch: u32, local: u32) -> u64 {
        (u64::from(epoch) << 32) | u64::from(local)
    }

    #[test]
    fn advance_adds_within_an_epoch() {
        assert_eq!(advance(word(0, 0), 1), word(0, 1));
        assert_eq!(advance(word(3, 10), 16), word(3, 26));
    }

    #[test]
    fn advance_bumps_the_epoch_instead_of_overflowing_local() {
        assert_eq!(advance(word(2, u32::MAX), 1), word(3, 1));
        assert_eq!(advance(word(2, u32::MAX - 3), 16), word(3, 16));
        // The bumped result is still a plain word increase.
        assert!(advance(word(2, u32::MAX - 3), 16) > word(2, u32::MAX - 3));
    }

    #[test]
    fn reserve_returns_disjoint_ranges_above_the_floor() {
        let shard = Shard::<PackedBackend>::new(2);
        let a = shard.reserve(0, 4);
        assert_eq!((a.first, a.last), (word(0, 1), word(0, 4)));
        assert!(a.fast);
        let floor = word(5, 100);
        let b = shard.reserve(floor, 2);
        assert_eq!((b.first, b.last), (word(5, 101), word(5, 102)));
        assert!(b.first > floor, "strictly above the folded floor");
    }

    #[test]
    fn get_batch_publishes_the_top_to_the_slot_register() {
        let shard = Shard::<PackedBackend>::new(2);
        let res = shard.get_batch(1, 0, 3);
        assert_eq!(res.last, word(0, 3));
        assert_eq!(shard.collect_max_word(), Some(word(0, 3)));
        assert_eq!(shard.stamps(), 3);
        // A lower floor on the same slot must not regress the register.
        shard.get_batch(1, 0, 1);
        assert_eq!(shard.collect_max_word(), Some(word(0, 4)));
    }

    #[test]
    fn reservations_bump_epochs_near_local_exhaustion() {
        let shard = Shard::<PackedBackend>::new(1);
        shard.raise_floor(word(7, u32::MAX - 2));
        let res = shard.reserve(0, 8);
        assert_eq!((res.first, res.last), (word(8, 1), word(8, 8)));
        // All stamps of the reservation share the bumped epoch.
        assert_eq!(res.first >> 32, res.last >> 32);
    }

    #[test]
    fn solo_combining_call_combines_itself() {
        let shard = Shard::<PackedBackend>::new(2);
        let grant = shard.get_combined(0, 0, 1);
        assert_eq!((grant.first, grant.last), (word(0, 1), word(0, 1)));
        let pass = grant.pass.expect("no peer: the caller must combine");
        assert_eq!(pass.served, 1);
        assert!(pass.fast);
        // The grant was published to the slot register.
        assert_eq!(shard.collect_max_word(), Some(word(0, 1)));
        // A second call with the first stamp as floor lands above it.
        let grant = shard.get_combined(1, word(0, 1), 1);
        assert_eq!(grant.first, word(0, 2));
    }

    #[test]
    fn concurrent_combining_grants_unique_consecutive_ranges() {
        let shard = std::sync::Arc::new(Shard::<PackedBackend>::new(4));
        let threads = 4;
        let rounds = 200;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let shard = std::sync::Arc::clone(&shard);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::with_capacity(rounds);
                for i in 0..rounds {
                    let k = 1 + (i % 3) as u64;
                    let lease = shard.pool.lease();
                    let grant = shard.get_combined(lease.slot(), 0, k);
                    drop(lease);
                    got.push((grant.first, grant.last));
                }
                got
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for handle in handles {
            for (first, last) in handle.join().expect("combining thread") {
                for w in first..=last {
                    assert!(seen.insert(w), "stamp word {w:#x} granted twice");
                }
            }
        }
        assert_eq!(seen.len() as u64, shard.stamps());
    }
}
