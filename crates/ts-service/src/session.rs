//! [`ClientSession`]: a virtual-pid client of the sharded service.

use ts_core::ShardedTimestamp;
use ts_register::{PackedBackend, RegisterBackend};

use crate::batch::ShardBatch;
use crate::service::ShardedCollectMax;

/// One client's handle on a [`ShardedCollectMax`].
///
/// A session is *identity plus floor*: a never-reused virtual pid, an
/// assigned shard, and the last stamp obtained. It owns no shared
/// memory — physical register slots are leased from the shard's pool
/// only while a call runs, which is how `M` sessions share
/// `shards * slots_per_shard` registers.
///
/// **Per-client monotonicity.** Every issuing method folds the floor
/// into the shard's reservation word before (or while) reserving, so
/// each stamp returned is strictly larger — in `(epoch, local)` and
/// hence in the full lexicographic order — than every stamp the session
/// returned before it, across batches, combining passes and
/// [`migrate`](ClientSession::migrate) calls. Each method `debug_assert`s
/// the property on return.
///
/// Sessions are plain data over `&service`, so they can move into
/// scoped threads; a session itself is single-threaded (`&mut self`),
/// which matches the paper's model of one process issuing sequential
/// `getTS` calls.
#[derive(Debug)]
pub struct ClientSession<'a, B: RegisterBackend<u64> = PackedBackend> {
    service: &'a ShardedCollectMax<B>,
    vpid: u32,
    shard: usize,
    last: Option<ShardedTimestamp>,
}

impl<'a, B: RegisterBackend<u64>> ClientSession<'a, B> {
    pub(crate) fn new(service: &'a ShardedCollectMax<B>, vpid: u32, shard: usize) -> Self {
        Self {
            service,
            vpid,
            shard,
            last: None,
        }
    }

    /// This session's virtual pid (globally unique, never reused).
    pub fn vpid(&self) -> u32 {
        self.vpid
    }

    /// The shard this session currently issues from.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The session's floor: its most recent stamp, if any.
    pub fn last(&self) -> Option<ShardedTimestamp> {
        self.last
    }

    /// The packed floor word (`0` before the first stamp).
    fn floor(&self) -> u64 {
        self.last.map_or(0, |t| t.word())
    }

    /// Records a batch's top as the new floor and checks monotonicity
    /// against the old one.
    fn advance_floor(&mut self, batch: &ShardBatch) {
        let first = batch.first_stamp();
        if let Some(prev) = self.last {
            debug_assert!(
                ShardedTimestamp::compare(&prev, &first),
                "session {} lost monotonicity: {prev} !< {first}",
                self.vpid
            );
        }
        self.last = Some(batch.last_stamp());
    }

    /// Issues one stamp (one slot lease + one CAS + one register
    /// write), strictly above the session's floor.
    pub fn get_ts(&mut self) -> ShardedTimestamp {
        let batch = self.service.issue_batch(self.shard, self.floor(), 1);
        self.advance_floor(&batch);
        batch.first_stamp()
    }

    /// Reserves `k` consecutive stamps with one CAS. The whole batch is
    /// above the session's floor, and the floor advances to the batch's
    /// top — the batch is *owned*: its stamps count as issued to this
    /// client in order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn get_ts_batch(&mut self, k: u32) -> ShardBatch {
        let batch = self.service.issue_batch(self.shard, self.floor(), k);
        self.advance_floor(&batch);
        batch.clone()
    }

    /// Issues one stamp through the shard's flat-combining publication
    /// array: under contention one combiner's CAS serves every waiting
    /// peer's request, this one included.
    pub fn get_ts_combined(&mut self) -> ShardedTimestamp {
        let batch = self.service.issue_combined(self.shard, self.floor(), 1);
        self.advance_floor(&batch);
        batch.first_stamp()
    }

    /// Moves the session to `shard`. The floor travels with the
    /// session: the next issue folds it into the new shard's word, so
    /// monotonicity holds across the migration even when the new shard
    /// is far behind the old one.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn migrate(&mut self, shard: usize) {
        assert!(
            shard < self.service.shards(),
            "shard {shard} out of range (service has {})",
            self.service.shards()
        );
        self.shard = shard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    #[test]
    fn stamps_strictly_increase_across_modes_and_migrations() {
        let service = ShardedCollectMax::new(ServiceConfig::new(3, 2));
        let mut session = service.session();
        let mut stamps = vec![session.get_ts()];
        stamps.extend(session.get_ts_batch(5));
        stamps.push(session.get_ts_combined());
        for target in [2, 1, 0, 2] {
            session.migrate(target);
            assert_eq!(session.shard(), target);
            stamps.push(session.get_ts());
            stamps.extend(session.get_ts_batch(3));
        }
        for pair in stamps.windows(2) {
            assert!(
                ShardedTimestamp::compare(&pair[0], &pair[1]),
                "{} !< {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn migration_to_a_lagging_shard_folds_the_floor() {
        let service = ShardedCollectMax::new(ServiceConfig::new(2, 1));
        let mut session = service.session(); // shard 0
        service.raise_shard_floor(0, ShardedTimestamp::new(9, 0, 0));
        let high = session.get_ts();
        assert_eq!(high.epoch, 9);
        session.migrate(1); // shard 1 is still at (0, 0)
        let after = session.get_ts();
        assert_eq!(after.shard, 1);
        assert!(
            ShardedTimestamp::compare(&high, &after),
            "{high} !< {after}"
        );
        // The lagging shard's word was pulled up by the floor fold.
        assert_eq!(after.epoch, 9);
    }

    #[test]
    fn sessions_keep_distinct_vpids_and_floors() {
        let service = ShardedCollectMax::new(ServiceConfig::new(1, 2));
        let mut a = service.session();
        let mut b = service.session();
        assert_ne!(a.vpid(), b.vpid());
        assert_eq!(a.last(), None);
        let ta = a.get_ts();
        assert_eq!(a.last(), Some(ta));
        assert_eq!(b.last(), None, "floors are per-session");
        let tb = b.get_ts();
        assert_ne!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn migrate_rejects_bad_shard() {
        let service = ShardedCollectMax::new(ServiceConfig::new(2, 1));
        service.session().migrate(2);
    }
}
