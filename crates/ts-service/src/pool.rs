//! [`SlotPool`]: physical register slots leased per call.
//!
//! This is the storage half of virtual-pid multiplexing: a client
//! session's *identity* is its vpid (never reused, unbounded), but its
//! *storage* — the single-writer register it publishes stamps to — is
//! borrowed from a fixed pool only while an issue call runs. The lease
//! serializes writers per slot, so each register keeps exactly one
//! writer at a time (the SWMR discipline the substrate assumes) even
//! with `M >> n` clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// A fixed set of slot ids (`0..n`) handed out one lease at a time.
///
/// Blocking is deliberate: a caller that cannot get a slot *waits*
/// rather than spinning on shared memory, and every such wait is
/// counted — the pool's wait count is the service's signal that the
/// client population has outgrown the shard's slot budget.
#[derive(Debug)]
pub(crate) struct SlotPool {
    /// Free slot ids, LIFO (reuse the warmest slot's cache lines).
    free: Mutex<Vec<usize>>,
    cv: Condvar,
    waits: AtomicU64,
}

impl SlotPool {
    /// A pool over slots `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one slot");
        Self {
            free: Mutex::new((0..n).rev().collect()),
            cv: Condvar::new(),
            waits: AtomicU64::new(0),
        }
    }

    /// Leases a slot, blocking until one is free. The lease releases
    /// the slot on drop.
    pub(crate) fn lease(&self) -> Lease<'_> {
        let mut free = self.free.lock().expect("slot pool lock");
        if free.is_empty() {
            self.waits.fetch_add(1, Ordering::Relaxed);
            while free.is_empty() {
                free = self.cv.wait(free).expect("slot pool lock");
            }
        }
        let slot = free.pop().expect("non-empty free list");
        Lease { pool: self, slot }
    }

    /// Leases that had to block because every slot was taken.
    pub(crate) fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

/// An exclusive hold on one slot id; returns it to the pool on drop.
#[derive(Debug)]
pub(crate) struct Lease<'a> {
    pool: &'a SlotPool,
    slot: usize,
}

impl Lease<'_> {
    /// The leased slot id.
    pub(crate) fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.pool
            .free
            .lock()
            .expect("slot pool lock")
            .push(self.slot);
        self.pool.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_exclusive_and_returned_on_drop() {
        let pool = SlotPool::new(2);
        let a = pool.lease();
        let b = pool.lease();
        assert_ne!(a.slot(), b.slot());
        let freed = a.slot();
        drop(a);
        let c = pool.lease();
        assert_eq!(c.slot(), freed, "LIFO reuse of the freed slot");
        drop(b);
        drop(c);
        assert_eq!(pool.waits(), 0, "no lease ever had to block");
    }

    #[test]
    fn oversubscribed_pool_blocks_and_counts_waits() {
        let pool = SlotPool::new(1);
        std::thread::scope(|s| {
            let held = pool.lease();
            let waiter = s.spawn(|| pool.lease().slot());
            // Give the waiter time to block on the empty free list.
            while pool.waits() == 0 {
                std::thread::yield_now();
            }
            drop(held);
            assert_eq!(waiter.join().expect("waiter"), 0);
        });
        assert_eq!(pool.waits(), 1);
    }

    #[test]
    fn many_threads_never_share_a_slot() {
        let pool = SlotPool::new(3);
        let in_use = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let lease = pool.lease();
                        let claims = in_use[lease.slot()].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(claims, 0, "two leases held slot {}", lease.slot());
                        in_use[lease.slot()].fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }
}
