//! [`ShardedCollectMax`]: the sharded, batched, combining timestamp
//! service.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ts_core::{ServiceStats, ShardedTimestamp, VpidAllocator};
use ts_register::{PackedBackend, RegisterBackend, SpaceMeter};

use crate::batch::ShardBatch;
use crate::session::ClientSession;
use crate::shard::{Pass, Shard};
use crate::ServiceConfig;

/// A long-lived timestamp *service* over `S` independent shard domains.
///
/// Each shard issues stamps from its own packed `(epoch, local)` word
/// and owns its own bank of `n` single-writer registers — the
/// [`CollectMax`](ts_core::CollectMax) substrate, partitioned. Issued
/// stamps are [`ShardedTimestamp`] triples, totally ordered
/// lexicographically; the service guarantees the timestamp property
/// *per client* (see the crate docs for exactly what is traded away,
/// and why that trade is what escapes the single contended maximum the
/// paper's Ω(n) objects all share).
///
/// Clients interact through [`ClientSession`]s
/// ([`session`](ShardedCollectMax::session)): a session carries a
/// never-reused virtual pid, its assigned shard and its floor (last
/// stamp), and borrows a physical register slot only while a call
/// runs — `M` sessions multiplex over `shards * slots_per_shard`
/// registers.
///
/// # Example
///
/// ```
/// use ts_service::{ServiceConfig, ShardedCollectMax};
///
/// let service = ShardedCollectMax::new(ServiceConfig::new(2, 4));
/// let mut a = service.session();
/// let mut b = service.session();
/// let (ta, tb) = (a.get_ts(), b.get_ts());
/// assert_ne!(ta, tb, "issued stamps are globally unique");
/// let stats = service.stats();
/// assert_eq!(stats.calls, 2);
/// assert_eq!(stats.stamps, 2);
/// ```
pub struct ShardedCollectMax<B: RegisterBackend<u64> = PackedBackend> {
    shards: Vec<Shard<B>>,
    config: ServiceConfig,
    vpids: VpidAllocator,
    calls: AtomicU64,
    fast_hits: AtomicU64,
    batches: AtomicU64,
    batched_stamps: AtomicU64,
    combined_ops: AtomicU64,
    combine_passes: AtomicU64,
    scan_recollects: AtomicU64,
}

impl ShardedCollectMax<PackedBackend> {
    /// Creates a service on the default word-inlined register backend.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_backend(config)
    }
}

impl<B: RegisterBackend<u64>> ShardedCollectMax<B> {
    /// Creates a service with `config.shards` domains of
    /// `config.slots_per_shard` registers each, on backend `B`.
    pub fn with_backend(config: ServiceConfig) -> Self {
        // Re-validate: the config fields are public.
        let config = ServiceConfig::new(config.shards, config.slots_per_shard);
        Self {
            shards: (0..config.shards)
                .map(|_| Shard::new(config.slots_per_shard))
                .collect(),
            config,
            vpids: VpidAllocator::new(),
            calls: AtomicU64::new(0),
            fast_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_stamps: AtomicU64::new(0),
            combined_ops: AtomicU64::new(0),
            combine_passes: AtomicU64::new(0),
            scan_recollects: AtomicU64::new(0),
        }
    }

    /// The shape this service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Number of shard domains.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Physical registers across all shards
    /// (`shards * slots_per_shard * 2`: an `(epoch, local)` pair per
    /// slot) — the service's register space, independent of how many
    /// sessions exist.
    pub fn registers(&self) -> usize {
        self.config.registers()
    }

    /// The backend label (for bench reports).
    pub fn backend_name(&self) -> &'static str {
        B::NAME
    }

    /// Mints a new client session, assigned round-robin (by vpid) to a
    /// shard. Sessions are cheap: a vpid, a shard index and a floor —
    /// no per-session shared memory.
    pub fn session(&self) -> ClientSession<'_, B> {
        let vpid = self.vpids.next();
        let shard = (vpid as usize) % self.config.shards;
        ClientSession::new(self, vpid, shard)
    }

    /// Sessions minted so far.
    pub fn sessions(&self) -> u32 {
        self.vpids.issued()
    }

    /// A shard's reservation frontier as a stamp (`None` while the
    /// shard has issued nothing). Administrative/diagnostic.
    pub fn shard_frontier(&self, shard: usize) -> Option<ShardedTimestamp> {
        let word = self.shards[shard].word();
        (word > 0).then(|| ShardedTimestamp::from_word(word, shard as u32))
    }

    /// Administratively raises a shard's floor: afterwards every stamp
    /// the shard issues exceeds `floor` in `(epoch, local)`. This is
    /// the rebalance hook (fold a retiring shard's frontier into its
    /// successor) and the test hook for driving a shard toward `local`
    /// exhaustion.
    pub fn raise_shard_floor(&self, shard: usize, floor: ShardedTimestamp) {
        self.shards[shard].raise_floor(floor.word());
    }

    /// Read-only observation pass: collects every shard's register bank
    /// and returns the largest *published* stamp (`None` before any
    /// publication). Lower-bounds the reservation frontiers — an
    /// in-flight reservation is visible here only once its issuer's
    /// register write lands.
    pub fn read_max(&self) -> Option<ShardedTimestamp> {
        let mut best: Option<ShardedTimestamp> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(word) = shard.collect_max_word() {
                let t = ShardedTimestamp::from_word(word, i as u32);
                if best.is_none_or(|b| b < t) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// Validated observation pass — the sharded sibling of the
    /// adaptive scan ladder in `ts-snapshot`. A plain [`read_max`]
    /// collect can interleave with publications; this variant repeats
    /// each frontier collect until two consecutive passes agree, and a
    /// retry re-collects **only the shards whose published maximum
    /// moved** (per-shard published maxima are monotone — every
    /// publication writes the top of a frontier reservation that
    /// strictly exceeds all earlier ones on that shard — so a stable
    /// per-shard max pins that shard for the whole bracket). Retry
    /// passes are counted into the `dirty_recollects` field of
    /// [`stats`](Self::stats).
    ///
    /// [`read_max`]: Self::read_max
    pub fn read_max_snapshot(&self) -> Option<ShardedTimestamp> {
        let mut words: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.collect_max_word().unwrap_or(0))
            .collect();
        // Dirty set: shards whose max moved since the previous pass.
        let mut dirty: Vec<usize> = (0..self.shards.len()).collect();
        loop {
            let mut moved = Vec::new();
            for &i in &dirty {
                let now = self.shards[i].collect_max_word().unwrap_or(0);
                if now != words[i] {
                    words[i] = now;
                    moved.push(i);
                }
            }
            if moved.is_empty() {
                break;
            }
            self.scan_recollects.fetch_add(1, Ordering::Relaxed);
            dirty = moved;
        }
        let best = words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, &w)| ShardedTimestamp::from_word(w, i as u32))
            .max();
        best
    }

    /// A shard's register-traffic meter (space accounting, same
    /// substrate as [`CollectMax::meter`](ts_core::CollectMax::meter)).
    pub fn meter(&self, shard: usize) -> &SpaceMeter {
        self.shards[shard].meter()
    }

    /// Snapshot of the unified hot-path counters.
    pub fn stats(&self) -> ServiceStats {
        let shard_stamps: Vec<u64> = self.shards.iter().map(Shard::stamps).collect();
        ServiceStats {
            calls: self.calls.load(Ordering::Relaxed),
            stamps: shard_stamps.iter().sum(),
            fast_hits: self.fast_hits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_stamps: self.batched_stamps.load(Ordering::Relaxed),
            combined_ops: self.combined_ops.load(Ordering::Relaxed),
            combine_passes: self.combine_passes.load(Ordering::Relaxed),
            lease_waits: self.shards.iter().map(|s| s.pool.waits()).sum(),
            shard_stamps,
            dirty_recollects: self.scan_recollects.load(Ordering::Relaxed),
            ..Default::default()
        }
    }

    /// Issues `k` stamps on `shard` above `floor` (a packed word, `0`
    /// for none): leases a slot, reserves with one CAS, publishes the
    /// top to the leased register. Sessions call this; it is the
    /// single-stamp path too (`k == 1`).
    pub(crate) fn issue_batch(&self, shard: usize, floor: u64, k: u32) -> ShardBatch {
        assert!(k >= 1, "batch size must be at least 1");
        let sh = &self.shards[shard];
        let lease = sh.pool.lease();
        let res = sh.get_batch(lease.slot(), floor, u64::from(k));
        drop(lease);
        self.calls.fetch_add(1, Ordering::Relaxed);
        if res.fast {
            self.fast_hits.fetch_add(1, Ordering::Relaxed);
        }
        if k > 1 {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.batched_stamps
                .fetch_add(u64::from(k), Ordering::Relaxed);
        }
        ShardBatch::new(res.first, res.last, shard as u32)
    }

    /// Issues `k` stamps on `shard` above `floor` through the
    /// flat-combining array.
    pub(crate) fn issue_combined(&self, shard: usize, floor: u64, k: u32) -> ShardBatch {
        assert!(k >= 1, "request size must be at least 1");
        let sh = &self.shards[shard];
        let lease = sh.pool.lease();
        let grant = sh.get_combined(lease.slot(), floor, u64::from(k));
        drop(lease);
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(Pass { served, fast }) = grant.pass {
            self.combine_passes.fetch_add(1, Ordering::Relaxed);
            self.combined_ops.fetch_add(served, Ordering::Relaxed);
            if fast {
                self.fast_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        ShardBatch::new(grant.first, grant.last, shard as u32)
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for ShardedCollectMax<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCollectMax")
            .field("backend", &B::NAME)
            .field("config", &self.config)
            .field("sessions", &self.vpids.issued())
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_register::EpochBackend;

    #[test]
    fn sessions_round_robin_over_shards() {
        let service = ShardedCollectMax::new(ServiceConfig::new(3, 1));
        let shards: Vec<usize> = (0..6).map(|_| service.session().shard()).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(service.sessions(), 6);
    }

    #[test]
    fn issued_stamps_land_in_stats_and_read_max() {
        let service = ShardedCollectMax::new(ServiceConfig::new(2, 2));
        let mut s0 = service.session(); // shard 0
        let mut s1 = service.session(); // shard 1
        s0.get_ts();
        let batch = s1.get_ts_batch(4);
        assert_eq!(batch.len(), 4);
        let stats = service.stats();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.stamps, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_stamps, 4);
        assert_eq!(stats.shard_stamps, vec![1, 4]);
        assert_eq!(stats.fast_hit_ratio(), Some(1.0), "uncontended = all fast");
        // Shard 1 published local 4 — the global max.
        let max = service.read_max().expect("stamps were published");
        assert_eq!((max.local, max.shard), (4, 1));
    }

    #[test]
    fn validated_snapshot_agrees_with_read_max_when_quiescent() {
        let service = ShardedCollectMax::new(ServiceConfig::new(3, 2));
        assert_eq!(service.read_max_snapshot(), None, "nothing published yet");
        let mut sessions: Vec<_> = (0..3).map(|_| service.session()).collect();
        for s in &mut sessions {
            s.get_ts();
            s.get_ts();
        }
        let snap = service.read_max_snapshot().expect("stamps were published");
        assert_eq!(Some(snap), service.read_max());
        // Quiescent validation: the confirming pass saw no movement.
        assert_eq!(service.stats().dirty_recollects, 0);
    }

    #[test]
    fn raise_shard_floor_pushes_the_frontier() {
        let service = ShardedCollectMax::new(ServiceConfig::new(1, 1));
        let floor = ShardedTimestamp::new(5, 10, 0);
        service.raise_shard_floor(0, floor);
        assert_eq!(service.shard_frontier(0), Some(floor));
        let mut s = service.session();
        let t = s.get_ts();
        assert_eq!((t.epoch, t.local), (5, 11));
    }

    #[test]
    fn epoch_backend_service_issues_identically() {
        let service: ShardedCollectMax<EpochBackend> =
            ShardedCollectMax::with_backend(ServiceConfig::new(2, 1));
        assert_eq!(service.backend_name(), "epoch");
        let mut s = service.session();
        let a = s.get_ts();
        let b = s.get_ts();
        assert!(ShardedTimestamp::compare(&a, &b));
        assert_eq!(service.stats().stamps, 2);
    }

    #[test]
    fn meters_record_register_traffic() {
        let service = ShardedCollectMax::new(ServiceConfig::new(1, 2));
        let mut s = service.session();
        s.get_ts();
        assert!(service.meter(0).snapshot().total_writes() >= 1);
    }
}
