//! The flat-combining publication array: one cell per physical slot.
//!
//! Flat combining (Hendler–Incze–Shavit–Tzafrir) turns `p` concurrent
//! single-stamp requests into one shared-memory transaction: every
//! caller *publishes* its request in a per-slot cell, one caller wins a
//! try-lock and becomes the **combiner**, drains every published
//! request, reserves the sum with a single CAS on the shard word, and
//! distributes consecutive sub-ranges back through the cells.
//!
//! # Cell protocol
//!
//! Each [`PubCell`] is a `(req, resp)` pair of atomics owned by one
//! slot lease at a time (the [`SlotPool`](crate::pool::SlotPool)
//! serializes publishers per cell):
//!
//! 1. *Publish* — the peer stores `resp = 0` (`Relaxed`; it owns the
//!    cell) then `req = k` (`Release`). A combiner that later reads
//!    `req = k` with `Acquire` therefore also sees `resp = 0`.
//! 2. *Serve* — the combiner, holding the combiner lock, stores
//!    `req = 0` (`Relaxed`) then `resp = first` (`Release`), where
//!    `first` is the packed word of the peer's first granted stamp.
//!    `first` is never zero (locals start at 1), so `0` is a safe
//!    "pending" sentinel.
//! 3. *Take* — the peer spins on `resp` with `Acquire`; a non-zero read
//!    carries the happens-before edge from the combiner's reservation,
//!    and (because `req = 0` was stored before the `Release`) the
//!    peer's *next* publication cannot be clobbered by a stale serve.
//!
//! Double-serve is impossible: requests are cleared inside the locked
//! pass before their responses publish, and passes are serialized by
//! the combiner lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// One slot's publication cell. Padded by the caller (the array wraps
/// each cell in `CachePadded` so peers spinning on their own `resp`
/// never bounce a neighbour's line).
#[derive(Debug, Default)]
pub(crate) struct PubCell {
    /// Pending request size (`0` = none). Written by the slot's lease
    /// holder (publish) and the combiner (clear-on-serve).
    req: AtomicU64,
    /// Granted range's first packed word (`0` = pending).
    resp: AtomicU64,
}

impl PubCell {
    /// Peer side: publishes a request for `k` stamps.
    pub(crate) fn publish(&self, k: u64) {
        debug_assert!(k >= 1);
        self.resp.store(0, Ordering::Relaxed);
        self.req.store(k, Ordering::Release);
    }

    /// Peer side: polls for a grant (the first packed word of the
    /// range), `None` while pending.
    pub(crate) fn poll(&self) -> Option<u64> {
        match self.resp.load(Ordering::Acquire) {
            0 => None,
            first => Some(first),
        }
    }

    /// Combiner side: reads the pending request size (`0` = none).
    pub(crate) fn pending(&self) -> u64 {
        self.req.load(Ordering::Acquire)
    }

    /// Combiner side: serves the cell with the first word of its
    /// granted range. Must hold the combiner lock.
    pub(crate) fn serve(&self, first: u64) {
        debug_assert!(first != 0, "grants start at local 1, never word 0");
        self.req.store(0, Ordering::Relaxed);
        self.resp.store(first, Ordering::Release);
    }
}

/// Spin policy while waiting for a grant or the combiner lock: a short
/// on-core spin, then yield — the blocking half matters on machines
/// with fewer cores than waiting peers (the combiner must get cycles
/// to finish its pass).
pub(crate) fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_serve_poll_round_trip() {
        let cell = PubCell::default();
        assert_eq!(cell.pending(), 0);
        assert_eq!(cell.poll(), None);
        cell.publish(3);
        assert_eq!(cell.pending(), 3);
        assert_eq!(cell.poll(), None, "pending until served");
        cell.serve(41);
        assert_eq!(cell.pending(), 0, "serve clears the request");
        assert_eq!(cell.poll(), Some(41));
        // Next round: publishing resets the stale grant.
        cell.publish(1);
        assert_eq!(cell.poll(), None);
    }
}
