//! Wait-free MWMR atomic register for arbitrary `T: Clone`.

use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use crate::traits::Register;

/// A linearizable multi-writer multi-reader register holding a `T`.
///
/// Reads and writes are wait-free. Internally the register is an atomic
/// pointer to an immutable heap cell; a write swaps the pointer and retires
/// the old cell through epoch-based reclamation, a read clones the value
/// behind the current pointer. Writes linearize at the pointer swap and
/// reads at the pointer load.
///
/// This is the executable stand-in for the paper's base object: registers
/// `r_1, ..., r_m` whose contents can be unbounded (Algorithm 4 stores a
/// sequence of getTS-ids plus a round number in each register). Values are
/// cloned out on read, so `T` is typically either small or cheaply
/// clonable (e.g. contains an `Arc`).
///
/// # Example
///
/// ```
/// use ts_register::AtomicRegister;
///
/// let reg = AtomicRegister::new(String::from("initial"));
/// reg.write(String::from("updated"));
/// assert_eq!(reg.read(), "updated");
/// ```
pub struct AtomicRegister<T> {
    cell: Atomic<T>,
}

impl<T: Clone + Send + Sync> AtomicRegister<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            cell: Atomic::new(initial),
        }
    }

    /// Returns a clone of the current value.
    pub fn read(&self) -> T {
        let guard = epoch::pin();
        let shared = self.cell.load(Ordering::Acquire, &guard);
        // SAFETY: the cell is never null (constructed with a value and
        // writes always install a value) and the epoch guard keeps the
        // pointee alive for the duration of the clone.
        unsafe { shared.deref().clone() }
    }

    /// Applies `f` to the current value without cloning it out.
    ///
    /// The reference passed to `f` is only valid for the duration of the
    /// call; this is the zero-copy variant of [`AtomicRegister::read`].
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = epoch::pin();
        let shared = self.cell.load(Ordering::Acquire, &guard);
        // SAFETY: as in `read`.
        unsafe { f(shared.deref()) }
    }

    /// Replaces the current value with `value`.
    pub fn write(&self, value: T) {
        let guard = epoch::pin();
        let old = self.cell.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was produced by `Atomic::new`/`Owned::new` and is
        // now unreachable from the register; readers that still hold it
        // are protected by their own epoch guards until they unpin.
        unsafe {
            guard.defer_destroy(old);
        }
    }
}

impl<T: Clone + Send + Sync> Register<T> for AtomicRegister<T> {
    fn read(&self) -> T {
        AtomicRegister::read(self)
    }

    fn write(&self, value: T) {
        AtomicRegister::write(self, value)
    }
}

impl<T: Clone + Send + Sync + Default> Default for AtomicRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for AtomicRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.read_with(|v| f.debug_tuple("AtomicRegister").field(v).finish())
    }
}

impl<T> Drop for AtomicRegister<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let shared = self
            .cell
            .swap(epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !shared.is_null() {
            // SAFETY: we hold `&mut self`, so no concurrent reader can
            // observe the old pointer after this swap; deferring keeps any
            // still-pinned historical readers safe.
            unsafe {
                guard.defer_destroy(shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_returns_initial_value() {
        let reg = AtomicRegister::new(7u64);
        assert_eq!(reg.read(), 7);
    }

    #[test]
    fn write_then_read_round_trips() {
        let reg = AtomicRegister::new(vec![0u8]);
        reg.write(vec![1, 2, 3]);
        assert_eq!(reg.read(), vec![1, 2, 3]);
    }

    #[test]
    fn read_with_avoids_clone() {
        let reg = AtomicRegister::new(String::from("abc"));
        let len = reg.read_with(|s| s.len());
        assert_eq!(len, 3);
    }

    #[test]
    fn debug_shows_value() {
        let reg = AtomicRegister::new(42u32);
        assert_eq!(format!("{reg:?}"), "AtomicRegister(42)");
    }

    #[test]
    fn default_uses_type_default() {
        let reg: AtomicRegister<u64> = AtomicRegister::default();
        assert_eq!(reg.read(), 0);
    }

    #[test]
    fn concurrent_writers_leave_one_of_the_written_values() {
        let reg = Arc::new(AtomicRegister::new(0usize));
        let threads = 8;
        let writes = 100;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 0..writes {
                        reg.write(t * writes + i + 1);
                    }
                });
            }
        })
        .unwrap();
        let last = reg.read();
        assert!(last >= 1 && last <= threads * writes);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_values() {
        // Write pairs (x, x); readers must never see (x, y) with x != y.
        let reg = Arc::new(AtomicRegister::new((0u64, 0u64)));
        crossbeam::scope(|s| {
            let writer = Arc::clone(&reg);
            s.spawn(move |_| {
                for i in 1..=10_000u64 {
                    writer.write((i, i));
                }
            });
            for _ in 0..4 {
                let reader = Arc::clone(&reg);
                s.spawn(move |_| {
                    for _ in 0..10_000 {
                        let (a, b) = reader.read();
                        assert_eq!(a, b, "torn read");
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn values_are_reclaimed_without_leaking() {
        // Smoke test: dropping the register after many writes must not
        // double-free (exercised under the default allocator; a crash or
        // MIRI failure would flag unsound reclamation).
        let reg = AtomicRegister::new(Arc::new(0u64));
        for i in 0..1000 {
            reg.write(Arc::new(i));
        }
        drop(reg);
    }

    #[test]
    fn send_sync_bounds_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicRegister<Vec<u64>>>();
    }
}
