//! Error types for the register substrate.

use std::error::Error;
use std::fmt;

/// Returned when an operation addresses a register beyond a fixed-capacity
/// array.
///
/// The paper sizes Algorithm 4's register array as `m = ⌈2√M⌉` for a bound
/// `M` on the number of `getTS` invocations; exceeding the bound must be a
/// detectable error rather than silent corruption (the final register is a
/// read-only sentinel that is never written).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapacityError {
    /// The register index that was addressed.
    pub index: usize,
    /// The number of registers in the array.
    pub capacity: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register index {} out of capacity {}",
            self.index, self.capacity
        )
    }
}

impl Error for CapacityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_index_and_capacity() {
        let err = CapacityError {
            index: 9,
            capacity: 4,
        };
        assert_eq!(err.to_string(), "register index 9 out of capacity 4");
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(CapacityError {
            index: 0,
            capacity: 0,
        });
    }
}
