//! Registers whose writes carry globally unique stamps.
//!
//! The double-collect scan (Afek et al. 1993, used by Algorithm 4 line 13)
//! detects *change* between two collects. Comparing raw values is unsafe in
//! general because a register can be rewritten with an equal value (ABA).
//! A [`StampedRegister`] tags every write with a [`Stamp`] that is unique
//! across the lifetime of the process, making change detection exact.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::atomic::AtomicRegister;
use crate::traits::Register;

/// Identifier for a single write operation to a register.
///
/// The uniqueness scope depends on who minted the stamp:
/// [`StampedRegister`] draws from a process-wide counter, so two
/// distinct writes *to any registers* never share a stamp;
/// [`PackedRegister`](crate::PackedRegister) draws from a per-register
/// counter, so stamps are unique only *within one register* (the
/// double-collect scan never compares stamps across registers, which is
/// why that suffices — see
/// [`BackendRegister`](crate::BackendRegister)). Stamp `0` is reserved
/// for the initial value of every register in both schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp(u64);

impl Stamp {
    /// The stamp carried by a register's initial value.
    pub const INITIAL: Stamp = Stamp(0);

    /// Returns the raw counter value (useful for logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Builds a stamp from a raw counter value.
    ///
    /// Used by backends whose stamps live outside the process-wide
    /// counter: the packed backend keeps them inside the register word,
    /// and third-party [`RegisterBackend`](crate::RegisterBackend)
    /// implementations (e.g. a quorum-replicated register whose stamps
    /// are `(seq, writer)` pairs) encode their own write identifiers.
    /// The caller owns the contract that equal raw values denote the
    /// same write *of the same register*.
    pub fn from_raw(raw: u64) -> Self {
        Stamp(raw)
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_stamp() -> Stamp {
    Stamp(NEXT_STAMP.fetch_add(1, Ordering::Relaxed))
}

/// A value together with the stamp of the write that installed it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stamped<T> {
    /// The stored value.
    pub value: T,
    /// Unique stamp of the installing write ([`Stamp::INITIAL`] for the
    /// register's initial value).
    pub stamp: Stamp,
}

impl<T> Stamped<T> {
    /// Wraps `value` with the initial stamp.
    pub fn initial(value: T) -> Self {
        Self {
            value,
            stamp: Stamp::INITIAL,
        }
    }
}

/// An atomic register whose writes are tagged with unique [`Stamp`]s.
///
/// Functionally identical to [`AtomicRegister`], plus exact change
/// detection: two reads returning equal stamps are guaranteed to have
/// observed the same write.
///
/// # Example
///
/// ```
/// use ts_register::StampedRegister;
///
/// let reg = StampedRegister::new(10u64);
/// let first = reg.read_stamped();
/// reg.write(10); // same value, new write
/// let second = reg.read_stamped();
/// assert_eq!(first.value, second.value);
/// assert_ne!(first.stamp, second.stamp); // change still detected
/// ```
pub struct StampedRegister<T> {
    inner: AtomicRegister<Stamped<T>>,
}

impl<T: Clone + Send + Sync> StampedRegister<T> {
    /// Creates a stamped register holding `initial` with [`Stamp::INITIAL`].
    pub fn new(initial: T) -> Self {
        Self {
            inner: AtomicRegister::new(Stamped::initial(initial)),
        }
    }

    /// Returns the current value together with its stamp.
    pub fn read_stamped(&self) -> Stamped<T> {
        self.inner.read()
    }

    /// Returns just the stamp of the current value (cheaper than a full
    /// read when `T` is expensive to clone).
    pub fn stamp(&self) -> Stamp {
        self.inner.read_with(|s| s.stamp)
    }

    /// Returns the current value, discarding the stamp.
    pub fn read(&self) -> T {
        self.inner.read_with(|s| s.value.clone())
    }

    /// Applies `f` to the current value without cloning it out — the
    /// zero-copy variant of [`StampedRegister::read`].
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.inner.read_with(|s| f(&s.value))
    }

    /// Writes `value` under a fresh, globally unique stamp.
    pub fn write(&self, value: T) {
        self.inner.write(Stamped {
            value,
            stamp: fresh_stamp(),
        });
    }
}

impl<T: Clone + Send + Sync> Register<T> for StampedRegister<T> {
    fn read(&self) -> T {
        StampedRegister::read(self)
    }

    fn write(&self, value: T) {
        StampedRegister::write(self, value)
    }
}

impl<T: Clone + Send + Sync + Default> Default for StampedRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for StampedRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.read_stamped();
        f.debug_struct("StampedRegister")
            .field("value", &s.value)
            .field("stamp", &s.stamp)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn initial_value_has_initial_stamp() {
        let reg = StampedRegister::new(3u32);
        let s = reg.read_stamped();
        assert_eq!(s.value, 3);
        assert_eq!(s.stamp, Stamp::INITIAL);
    }

    #[test]
    fn rewriting_same_value_changes_stamp() {
        let reg = StampedRegister::new(1u8);
        reg.write(1);
        let a = reg.read_stamped();
        reg.write(1);
        let b = reg.read_stamped();
        assert_eq!(a.value, b.value);
        assert_ne!(a.stamp, b.stamp);
    }

    #[test]
    fn stamps_are_unique_across_registers_and_threads() {
        let r1 = Arc::new(StampedRegister::new(0u64));
        let r2 = Arc::new(StampedRegister::new(0u64));
        let stamps: Vec<Stamp> = crossbeam::scope(|s| {
            let h1 = {
                let r1 = Arc::clone(&r1);
                s.spawn(move |_| {
                    (0..500)
                        .map(|i| {
                            r1.write(i);
                            r1.stamp()
                        })
                        .collect::<Vec<_>>()
                })
            };
            let h2 = {
                let r2 = Arc::clone(&r2);
                s.spawn(move |_| {
                    (0..500)
                        .map(|i| {
                            r2.write(i);
                            r2.stamp()
                        })
                        .collect::<Vec<_>>()
                })
            };
            let mut v = h1.join().unwrap();
            v.extend(h2.join().unwrap());
            v
        })
        .unwrap();
        // Observed stamps may repeat (a read can see an older write), but
        // the set of *written* stamps is unique; sample uniqueness here.
        let distinct: HashSet<_> = stamps.iter().collect();
        assert!(distinct.len() > 500, "stamps collapsed: {}", distinct.len());
    }

    #[test]
    fn register_trait_is_object_safe_for_stamped() {
        let reg = StampedRegister::new(0u64);
        let dynreg: &dyn Register<u64> = &reg;
        dynreg.write(5);
        assert_eq!(dynreg.read(), 5);
    }

    #[test]
    fn display_stamp() {
        assert_eq!(Stamp::INITIAL.to_string(), "#0");
    }
}
