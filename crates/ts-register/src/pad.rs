//! Cache-line padding for contended shared state.
//!
//! The hot paths of this suite are arrays of small atomics written by
//! different threads: timestamp registers, gate counters, latency
//! buckets. Laid out contiguously, neighbouring entries share a cache
//! line, so a write by one thread invalidates the line for every
//! thread touching a *different* entry — false sharing. [`CachePadded`]
//! aligns (and therefore pads) its contents to 128 bytes so that two
//! padded values never share a line.
//!
//! 128 bytes, not 64: modern x86 prefetchers pull cache lines in
//! adjacent pairs, and Apple/ARM big cores use 128-byte lines outright,
//! so 64-byte padding still ping-pongs on those parts. This matches
//! the sizing used by crossbeam-utils' `CachePadded`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Aligns its contents to 128 bytes so two `CachePadded` values never
/// share (a prefetch-paired run of) cache lines.
///
/// `Deref`s to the inner value, so a `CachePadded<AtomicU64>` is used
/// exactly like the bare atomic. The cost is space: a padded value
/// occupies at least 128 bytes, which is why the suite pads *per-slot
/// contended* state (one register per writer, per-worker gate state)
/// and not bulk data.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ts_register::CachePadded;
///
/// let counter = CachePadded::new(AtomicU64::new(0));
/// counter.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(counter.load(Ordering::Relaxed), 1);
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` onto its own cache line(s).
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_128_byte_aligned_and_sized() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // Larger-than-line contents round up to the next multiple.
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 130]>>(), 256);
    }

    #[test]
    fn vec_of_padded_values_puts_each_on_its_own_line() {
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        for pair in v.windows(2) {
            let a = &*pair[0] as *const u64 as usize;
            let b = &*pair[1] as *const u64 as usize;
            assert!(b - a >= 128, "adjacent entries {a:#x}/{b:#x} share a line");
        }
    }

    #[test]
    fn deref_and_conversions_round_trip() {
        let mut p = CachePadded::from(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        assert_eq!(format!("{:?}", CachePadded::new(7)), "CachePadded(7)");
    }
}
