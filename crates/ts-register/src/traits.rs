//! The [`Register`] abstraction shared by all register flavours.

/// A linearizable shared read/write register.
///
/// This is the base object of the paper's model (Section 2): an atomic
/// multi-writer multi-reader register. Both operations must be wait-free:
/// they complete in a bounded number of the caller's own steps regardless
/// of the behaviour of other threads.
///
/// # Example
///
/// ```
/// use ts_register::{AtomicRegister, Register};
///
/// fn bump(reg: &dyn Register<u64>) {
///     let v = reg.read();
///     reg.write(v + 1);
/// }
///
/// let reg = AtomicRegister::new(0);
/// bump(&reg);
/// assert_eq!(reg.read(), 1);
/// ```
pub trait Register<T>: Send + Sync {
    /// Returns the current value of the register.
    fn read(&self) -> T;

    /// Replaces the value of the register.
    fn write(&self, value: T);
}

impl<T, R: Register<T> + ?Sized> Register<T> for &R {
    fn read(&self) -> T {
        (**self).read()
    }

    fn write(&self, value: T) {
        (**self).write(value)
    }
}

impl<T, R: Register<T> + ?Sized> Register<T> for std::sync::Arc<R> {
    fn read(&self) -> T {
        (**self).read()
    }

    fn write(&self, value: T) {
        (**self).write(value)
    }
}
