//! Fixed-capacity arrays of registers with whole-array collects.

use std::fmt;
use std::marker::PhantomData;

use crate::backend::{BackendRegister, EpochBackend, PackedBackend, RegisterBackend};
use crate::error::CapacityError;
use crate::meter::SpaceMeter;
use crate::packed::Packable;
use crate::stamped::Stamped;
use crate::traits::Register;

/// A fixed array `R[0..m)` of stamped atomic registers with optional
/// space metering, generic over the storage [`RegisterBackend`].
///
/// This is the shared data structure of Algorithm 4: `m` multi-writer
/// multi-reader registers, all initialized to the same value (the paper's
/// `⊥`). The array exposes indexed `read`/`write` plus a `collect` (one
/// read of each register in index order), the building block of the
/// double-collect scan.
///
/// The default backend is [`EpochBackend`] (values of any size); arrays
/// of small [`Packable`] values can opt into the word-inlined
/// [`PackedBackend`] via [`RegisterArray::new_packed`] (or the
/// [`PackedRegisterArray`] alias), trading away unbounded contents for
/// allocation-free, pin-free operations.
///
/// # Example
///
/// ```
/// use ts_register::{PackedRegisterArray, RegisterArray};
///
/// let array: RegisterArray<Option<u64>> = RegisterArray::new(3, None);
/// array.write(1, Some(42)).unwrap();
/// assert_eq!(array.read(1).unwrap(), Some(42));
/// let view = array.collect();
/// assert_eq!(view.len(), 3);
///
/// // Same API, word-inlined storage:
/// let packed: PackedRegisterArray<u32> = RegisterArray::new_packed(3, 0);
/// packed.write(2, 7).unwrap();
/// assert_eq!(packed.read(2).unwrap(), 7);
/// ```
pub struct RegisterArray<T, B: RegisterBackend<T> = EpochBackend> {
    registers: Vec<B::Reg>,
    meter: Option<SpaceMeter>,
    _value: PhantomData<fn(T) -> T>,
}

/// A [`RegisterArray`] of word-inlined [`PackedBackend`] registers.
pub type PackedRegisterArray<T> = RegisterArray<T, PackedBackend>;

impl<T: Clone + Send + Sync + 'static> RegisterArray<T, EpochBackend> {
    /// Creates an epoch-backed array of `capacity` registers, all
    /// holding `initial`.
    pub fn new(capacity: usize, initial: T) -> Self {
        Self::with_backend(capacity, initial)
    }

    /// Creates a metered epoch-backed array; all operations report to
    /// `meter`.
    ///
    /// # Panics
    ///
    /// Panics if `meter.capacity() != capacity`.
    pub fn with_meter(capacity: usize, initial: T, meter: SpaceMeter) -> Self {
        Self::with_backend_and_meter(capacity, initial, meter)
    }
}

impl<T: Packable> RegisterArray<T, PackedBackend> {
    /// Creates a packed array of `capacity` registers, all holding
    /// `initial`.
    pub fn new_packed(capacity: usize, initial: T) -> Self {
        Self::with_backend(capacity, initial)
    }
}

impl<T: Clone + Send + Sync, B: RegisterBackend<T>> RegisterArray<T, B> {
    /// Creates an array of `capacity` registers, all holding `initial`,
    /// on the backend `B`.
    pub fn with_backend(capacity: usize, initial: T) -> Self {
        let registers = (0..capacity)
            .map(|_| B::Reg::with_initial(initial.clone()))
            .collect();
        Self {
            registers,
            meter: None,
            _value: PhantomData,
        }
    }

    /// Creates a metered array on the backend `B`; all operations report
    /// to `meter`.
    ///
    /// # Panics
    ///
    /// Panics if `meter.capacity() != capacity`.
    pub fn with_backend_and_meter(capacity: usize, initial: T, meter: SpaceMeter) -> Self {
        assert_eq!(
            meter.capacity(),
            capacity,
            "meter capacity must match array capacity"
        );
        let mut array = Self::with_backend(capacity, initial);
        array.meter = Some(meter);
        array
    }

    /// Number of registers in the array.
    pub fn capacity(&self) -> usize {
        self.registers.len()
    }

    /// Returns the meter attached to this array, if any.
    pub fn meter(&self) -> Option<&SpaceMeter> {
        self.meter.as_ref()
    }

    fn check(&self, index: usize) -> Result<(), CapacityError> {
        if index < self.registers.len() {
            Ok(())
        } else {
            Err(CapacityError {
                index,
                capacity: self.registers.len(),
            })
        }
    }

    /// Reads register `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn read(&self, index: usize) -> Result<T, CapacityError> {
        Ok(self.read_stamped(index)?.value)
    }

    /// Reads register `index` together with its write stamp.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn read_stamped(&self, index: usize) -> Result<Stamped<T>, CapacityError> {
        self.check(index)?;
        if let Some(meter) = &self.meter {
            meter.record_read(index);
        }
        Ok(self.registers[index].read_stamped())
    }

    /// Writes `value` to register `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn write(&self, index: usize, value: T) -> Result<(), CapacityError> {
        self.check(index)?;
        if let Some(meter) = &self.meter {
            meter.record_write(index);
        }
        self.registers[index].write(value);
        Ok(())
    }

    /// Reads every register once, in index order, returning the observed
    /// values with their stamps.
    ///
    /// A single collect is *not* a linearizable view of the whole array
    /// (writes may interleave between the per-register reads); use the
    /// double-collect scan from `ts-snapshot` when an atomic view is
    /// required.
    pub fn collect(&self) -> Vec<Stamped<T>> {
        (0..self.capacity())
            .map(|i| self.read_stamped(i).expect("index in range"))
            .collect()
    }
}

impl<T, B> fmt::Debug for RegisterArray<T, B>
where
    T: Clone + Send + Sync + fmt::Debug,
    B: RegisterBackend<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisterArray")
            .field("capacity", &self.capacity())
            .field("values", &self.collect())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_holds_initial_everywhere() {
        let array: RegisterArray<u32> = RegisterArray::new(4, 7);
        for i in 0..4 {
            assert_eq!(array.read(i).unwrap(), 7);
        }
    }

    #[test]
    fn packed_array_holds_initial_everywhere() {
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(4, 7);
        for i in 0..4 {
            assert_eq!(array.read(i).unwrap(), 7);
        }
    }

    #[test]
    fn out_of_range_read_errors() {
        let array: RegisterArray<u32> = RegisterArray::new(2, 0);
        let err = array.read(2).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.capacity, 2);
    }

    #[test]
    fn out_of_range_write_errors() {
        let array: RegisterArray<u32> = RegisterArray::new(2, 0);
        assert!(array.write(5, 1).is_err());
    }

    #[test]
    fn collect_returns_all_values_in_order_on_both_backends() {
        fn run<B: RegisterBackend<u32>>(array: RegisterArray<u32, B>) {
            array.write(0, 10).unwrap();
            array.write(2, 30).unwrap();
            let view = array.collect();
            let values: Vec<u32> = view.into_iter().map(|s| s.value).collect();
            assert_eq!(values, vec![10, 0, 30]);
        }
        run(RegisterArray::<u32>::new(3, 0));
        run(RegisterArray::<u32, PackedBackend>::with_backend(3, 0));
    }

    #[test]
    fn stamps_detect_rewrites_on_both_backends() {
        fn run<B: RegisterBackend<u32>>(array: RegisterArray<u32, B>) {
            let before = array.read_stamped(0).unwrap();
            array.write(0, before.value).unwrap();
            let after = array.read_stamped(0).unwrap();
            assert_eq!(before.value, after.value);
            assert_ne!(before.stamp, after.stamp, "ABA rewrite went undetected");
        }
        run(RegisterArray::<u32>::new(1, 5));
        run(RegisterArray::<u32, PackedBackend>::with_backend(1, 5));
    }

    #[test]
    fn metered_array_reports_operations() {
        let meter = SpaceMeter::new(3);
        let array = RegisterArray::with_meter(3, 0u32, meter.clone());
        array.write(1, 5).unwrap();
        let _ = array.collect();
        let snap = meter.snapshot();
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(snap.total_reads(), 3);
        assert_eq!(snap.max_written_index(), Some(1));
    }

    #[test]
    fn metered_packed_array_reports_operations() {
        let meter = SpaceMeter::new(2);
        let array: PackedRegisterArray<u8> =
            RegisterArray::with_backend_and_meter(2, 0, meter.clone());
        array.write(0, 1).unwrap();
        let _ = array.read(1).unwrap();
        let snap = meter.snapshot();
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(snap.total_reads(), 1);
    }

    #[test]
    #[should_panic(expected = "meter capacity must match")]
    fn mismatched_meter_capacity_panics() {
        let meter = SpaceMeter::new(2);
        let _ = RegisterArray::with_meter(3, 0u32, meter);
    }

    #[test]
    fn zero_capacity_array_is_usable() {
        let array: RegisterArray<u8> = RegisterArray::new(0, 0);
        assert_eq!(array.capacity(), 0);
        assert!(array.collect().is_empty());
        assert!(array.read(0).is_err());
    }
}
