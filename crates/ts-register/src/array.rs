//! Fixed-capacity arrays of registers with whole-array collects.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::backend::{BackendRegister, EpochBackend, PackedBackend, RegisterBackend};
use crate::error::CapacityError;
use crate::meter::SpaceMeter;
use crate::packed::Packable;
use crate::pad::CachePadded;
use crate::stamped::{Stamp, Stamped};
use crate::traits::Register;

/// How a [`RegisterArray`] lays its registers out in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArrayLayout {
    /// One register per cache line ([`CachePadded`]): writers to
    /// different registers never invalidate each other's lines. The
    /// default — the paper's algorithms assign one writer per register,
    /// which is exactly the false-sharing pattern padding removes.
    #[default]
    Padded,
    /// Registers packed contiguously. Smaller, but neighbouring
    /// registers share cache lines; kept for memory-tight arrays and as
    /// the A/B baseline the contention benchmarks compare against.
    Compact,
}

impl ArrayLayout {
    /// Short label for benchmark rows ("padded" / "compact").
    pub fn label(self) -> &'static str {
        match self {
            ArrayLayout::Padded => "padded",
            ArrayLayout::Compact => "compact",
        }
    }
}

/// Snapshot of a [`RegisterArray`]'s write-summary word.
///
/// The array maintains one `AtomicU64` beside the registers, packing
/// two 32-bit counts: writes **begun** (high half, bumped immediately
/// before the register store) and writes **completed** (low half,
/// bumped immediately after). Two summary reads bracketing a collect
/// let a reader prove the collect saw a quiescent array — see
/// [`WriteSummary::no_writes_during`] — which is what lets the
/// `ts-snapshot` scan skip its second collect in the uncontended case.
///
/// A *single* generation counter could not do this soundly: it detects
/// writes that completed inside the window but not writes *in flight*
/// across it, and an in-flight store landing mid-collect can tear the
/// view even though the generation never moved. Counting begun and
/// completed separately closes that hole: if every write begun by the
/// end of the window had already completed before its start, no store
/// landed inside it at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    raw: u64,
}

impl WriteSummary {
    /// Writes begun, mod 2³² (bumped before each register store).
    pub fn begun(self) -> u32 {
        (self.raw >> 32) as u32
    }

    /// Writes completed, mod 2³² (bumped after each register store).
    pub fn completed(self) -> u32 {
        self.raw as u32
    }

    /// The array's write generation: total completed writes, mod 2³².
    /// Never decreases (modulo the 32-bit wrap).
    pub fn generation(self) -> u32 {
        self.completed()
    }

    /// Whether **no register store executed** between the moment
    /// `start` was read and the moment `end` was read: every write
    /// begun by `end` had already completed before `start`.
    ///
    /// Since `completed <= begun` at all times, the single equality
    /// pins all four counts: nothing began, completed, or was in flight
    /// inside the window. A collect bracketed by such a pair therefore
    /// read a quiescent array and is trivially linearizable.
    ///
    /// Wrap caveat (same class as the packed stamp wrap): the counts
    /// are 32-bit, so the check could be fooled only by ~2³² write
    /// *begins* landing between the two summary reads — unreachable in
    /// any real schedule. Both halves stay exact mod 2³² across wraps:
    /// the begun bump wraps off the top of the word, and the writer
    /// that wraps the completed half immediately cancels the carry it
    /// pushed into `begun` (transiently inflating `begun` by one —
    /// the safe, false-non-quiescence direction).
    pub fn no_writes_during(start: WriteSummary, end: WriteSummary) -> bool {
        start.completed() == end.begun()
    }
}

/// One `begun` tick in the packed summary word (high half).
const SUMMARY_BEGUN_ONE: u64 = 1 << 32;

/// Registers covered by one block dirty word (see
/// [`RegisterArray::block_summary`]): a retrying scanner narrows its
/// recollect to the registers of blocks whose dirty word moved, so the
/// block size trades recollect precision (smaller blocks) against
/// per-write bump traffic and summary-sweep length (larger blocks).
/// 64 keeps a 4096-register array's dirty sweep at 64 one-word loads.
pub const BLOCK_REGISTERS: usize = 64;

/// Bumps the `begun` half of a summary word (immediately before a
/// register store). The bump wraps off the top of the word cleanly.
fn bump_begun(word: &AtomicU64) {
    word.fetch_add(SUMMARY_BEGUN_ONE, Ordering::SeqCst);
}

/// Bumps the `completed` half of a summary word (immediately after a
/// register store), cancelling the carry when the low half wraps —
/// see the comment in [`RegisterArray::write`].
fn bump_completed(word: &AtomicU64) {
    let prev = word.fetch_add(1, Ordering::SeqCst);
    if prev as u32 == u32::MAX {
        word.fetch_sub(SUMMARY_BEGUN_ONE, Ordering::SeqCst);
    }
}

/// A fixed run of slots stored per an [`ArrayLayout`]: one slot per
/// cache line ([`CachePadded`]) or packed contiguously.
///
/// This is the backing store of [`RegisterArray`], exported so other
/// per-slot-contended structures (e.g. `ts-core`'s collect-max
/// registers) share one layout-dispatch implementation instead of
/// re-deriving it.
pub enum Slots<T> {
    /// One slot per cache line.
    Padded(Vec<CachePadded<T>>),
    /// Slots packed contiguously.
    Compact(Vec<T>),
}

impl<T> Slots<T> {
    /// Builds `capacity` slots with `mk(index)` under `layout`.
    pub fn new(layout: ArrayLayout, capacity: usize, mut mk: impl FnMut(usize) -> T) -> Self {
        match layout {
            ArrayLayout::Padded => {
                Slots::Padded((0..capacity).map(|i| CachePadded::new(mk(i))).collect())
            }
            ArrayLayout::Compact => Slots::Compact((0..capacity).map(mk).collect()),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            Slots::Padded(v) => v.len(),
            Slots::Compact(v) => v.len(),
        }
    }

    /// Whether there are zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The layout this run was built with.
    pub fn layout(&self) -> ArrayLayout {
        match self {
            Slots::Padded(_) => ArrayLayout::Padded,
            Slots::Compact(_) => ArrayLayout::Compact,
        }
    }

    /// Borrows slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> &T {
        match self {
            Slots::Padded(v) => &v[index],
            Slots::Compact(v) => &v[index],
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Slots<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slots")
            .field("layout", &self.layout())
            .field("len", &self.len())
            .finish()
    }
}

/// A fixed array `R[0..m)` of stamped atomic registers with optional
/// space metering, generic over the storage [`RegisterBackend`].
///
/// This is the shared data structure of Algorithm 4: `m` multi-writer
/// multi-reader registers, all initialized to the same value (the paper's
/// `⊥`). The array exposes indexed `read`/`write` plus a `collect` (one
/// read of each register in index order), the building block of the
/// double-collect scan.
///
/// # Memory layout and the write summary
///
/// Two contention-aware features live at the array level (see the
/// "Hot paths & memory layout" section of `ARCHITECTURE.md`):
///
/// - registers are laid out **one per cache line** by default
///   ([`ArrayLayout::Padded`]); [`with_layout`](RegisterArray::with_layout)
///   opts into the compact layout for memory-tight arrays;
/// - every write brackets its register store with bumps of a shared
///   **write-summary word** (one padded `AtomicU64`), so readers can
///   prove "nothing changed while I collected" from two one-word loads
///   — see [`WriteSummary`] and [`RegisterArray::summary`]. The
///   `ts-snapshot` scan uses this to skip its second collect whenever
///   the array is quiescent.
///
/// The default backend is [`EpochBackend`] (values of any size); arrays
/// of small [`Packable`] values can opt into the word-inlined
/// [`PackedBackend`] via [`RegisterArray::new_packed`] (or the
/// [`PackedRegisterArray`] alias), trading away unbounded contents for
/// allocation-free, pin-free operations.
///
/// # Example
///
/// ```
/// use ts_register::{PackedRegisterArray, RegisterArray};
///
/// let array: RegisterArray<Option<u64>> = RegisterArray::new(3, None);
/// array.write(1, Some(42)).unwrap();
/// assert_eq!(array.read(1).unwrap(), Some(42));
/// let view = array.collect();
/// assert_eq!(view.len(), 3);
/// assert_eq!(array.summary().generation(), 1);
///
/// // Same API, word-inlined storage:
/// let packed: PackedRegisterArray<u32> = RegisterArray::new_packed(3, 0);
/// packed.write(2, 7).unwrap();
/// assert_eq!(packed.read(2).unwrap(), 7);
/// ```
pub struct RegisterArray<T, B: RegisterBackend<T> = EpochBackend> {
    registers: Slots<B::Reg>,
    /// Packed begun/completed write counts; padded so summary bumps
    /// never contend with register lines.
    summary: CachePadded<AtomicU64>,
    /// Per-block dirty words, one per [`BLOCK_REGISTERS`] registers,
    /// with the same begun/completed packing as `summary`. A write
    /// brackets its store with bumps of *both* its block word and the
    /// global word, so a retrying scanner can localize interference to
    /// blocks instead of re-sweeping the whole array — see
    /// [`RegisterArray::block_summary`].
    blocks: Box<[CachePadded<AtomicU64>]>,
    meter: Option<SpaceMeter>,
    _value: PhantomData<fn(T) -> T>,
}

/// A [`RegisterArray`] of word-inlined [`PackedBackend`] registers.
pub type PackedRegisterArray<T> = RegisterArray<T, PackedBackend>;

impl<T: Clone + Send + Sync + 'static> RegisterArray<T, EpochBackend> {
    /// Creates an epoch-backed array of `capacity` registers, all
    /// holding `initial`.
    pub fn new(capacity: usize, initial: T) -> Self {
        Self::with_backend(capacity, initial)
    }

    /// Creates a metered epoch-backed array; all operations report to
    /// `meter`.
    ///
    /// # Panics
    ///
    /// Panics if `meter.capacity() != capacity`.
    pub fn with_meter(capacity: usize, initial: T, meter: SpaceMeter) -> Self {
        Self::with_backend_and_meter(capacity, initial, meter)
    }
}

impl<T: Packable> RegisterArray<T, PackedBackend> {
    /// Creates a packed array of `capacity` registers, all holding
    /// `initial`.
    pub fn new_packed(capacity: usize, initial: T) -> Self {
        Self::with_backend(capacity, initial)
    }
}

impl<T: Clone + Send + Sync, B: RegisterBackend<T>> RegisterArray<T, B> {
    /// Creates an array of `capacity` registers, all holding `initial`,
    /// on the backend `B`, in the default cache-padded layout.
    pub fn with_backend(capacity: usize, initial: T) -> Self {
        Self::with_layout(capacity, initial, ArrayLayout::Padded)
    }

    /// Creates an array on the backend `B` with an explicit
    /// [`ArrayLayout`].
    pub fn with_layout(capacity: usize, initial: T, layout: ArrayLayout) -> Self {
        let block_count = capacity.div_ceil(BLOCK_REGISTERS);
        Self {
            registers: Slots::new(layout, capacity, |_| B::Reg::with_initial(initial.clone())),
            summary: CachePadded::new(AtomicU64::new(0)),
            blocks: (0..block_count)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            meter: None,
            _value: PhantomData,
        }
    }

    /// Creates a metered array on the backend `B`; all operations report
    /// to `meter`.
    ///
    /// # Panics
    ///
    /// Panics if `meter.capacity() != capacity`.
    pub fn with_backend_and_meter(capacity: usize, initial: T, meter: SpaceMeter) -> Self {
        Self::with_layout_and_meter(capacity, initial, ArrayLayout::Padded, meter)
    }

    /// Creates a metered array on the backend `B` with an explicit
    /// [`ArrayLayout`].
    ///
    /// # Panics
    ///
    /// Panics if `meter.capacity() != capacity`.
    pub fn with_layout_and_meter(
        capacity: usize,
        initial: T,
        layout: ArrayLayout,
        meter: SpaceMeter,
    ) -> Self {
        assert_eq!(
            meter.capacity(),
            capacity,
            "meter capacity must match array capacity"
        );
        let mut array = Self::with_layout(capacity, initial, layout);
        array.meter = Some(meter);
        array
    }

    /// Number of registers in the array.
    pub fn capacity(&self) -> usize {
        self.registers.len()
    }

    /// The memory layout this array was built with.
    pub fn layout(&self) -> ArrayLayout {
        self.registers.layout()
    }

    /// Returns the meter attached to this array, if any.
    pub fn meter(&self) -> Option<&SpaceMeter> {
        self.meter.as_ref()
    }

    /// Reads the write-summary word (one `SeqCst` load).
    ///
    /// See [`WriteSummary`] for what two of these prove about a collect
    /// bracketed between them.
    pub fn summary(&self) -> WriteSummary {
        WriteSummary {
            raw: self.summary.load(Ordering::SeqCst),
        }
    }

    /// Number of block dirty words (`ceil(capacity / BLOCK_REGISTERS)`).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block covering register `index`.
    pub fn block_of(index: usize) -> usize {
        index / BLOCK_REGISTERS
    }

    /// The register indices covered by `block` (clamped to capacity for
    /// the final, possibly partial, block).
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        assert!(block < self.blocks.len(), "block {block} out of range");
        let start = block * BLOCK_REGISTERS;
        start..self.capacity().min(start + BLOCK_REGISTERS)
    }

    /// Reads the dirty word of `block` (one `SeqCst` load, unmetered —
    /// like [`summary`](RegisterArray::summary), the dirty words are
    /// auxiliary state, not one of the array's registers).
    ///
    /// Two of these bracketing a window prove, via
    /// [`WriteSummary::no_writes_during`], that no store to any register
    /// of that block executed inside the window — the per-block
    /// refinement of the global summary that lets a retrying scanner
    /// re-read only the registers of blocks that actually moved.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_summary(&self, block: usize) -> WriteSummary {
        WriteSummary {
            raw: self.blocks[block].load(Ordering::SeqCst),
        }
    }

    /// Reads every block dirty word once, in block order (unmetered).
    pub fn block_summaries(&self) -> Vec<WriteSummary> {
        (0..self.blocks.len())
            .map(|b| self.block_summary(b))
            .collect()
    }

    fn check(&self, index: usize) -> Result<(), CapacityError> {
        if index < self.registers.len() {
            Ok(())
        } else {
            Err(CapacityError {
                index,
                capacity: self.registers.len(),
            })
        }
    }

    /// Reads register `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn read(&self, index: usize) -> Result<T, CapacityError> {
        Ok(self.read_stamped(index)?.value)
    }

    /// Reads register `index` together with its write stamp.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn read_stamped(&self, index: usize) -> Result<Stamped<T>, CapacityError> {
        self.check(index)?;
        if let Some(meter) = &self.meter {
            meter.record_read(index);
        }
        Ok(self.registers.get(index).read_stamped())
    }

    /// Reads just the write stamp of register `index` — the cheapest
    /// change probe a backend offers (no value clone on the epoch
    /// backend). One register read for metering purposes.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn stamp(&self, index: usize) -> Result<Stamp, CapacityError> {
        self.check(index)?;
        if let Some(meter) = &self.meter {
            meter.record_read(index);
        }
        Ok(self.registers.get(index).stamp())
    }

    /// Writes `value` to register `index`, bracketed by the
    /// begun/completed bumps of the write-summary word.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if `index` is out of range.
    pub fn write(&self, index: usize, value: T) -> Result<(), CapacityError> {
        self.check(index)?;
        if let Some(meter) = &self.meter {
            meter.record_write(index);
        }
        // `SeqCst` bumps so summary loads, register accesses and these
        // RMWs order consistently; see the ordering contract in
        // `crate::backend`. The begun bump (high half) wraps off the
        // top of the word cleanly. The store is bracketed twice — by
        // the global word and by its block's dirty word — so readers
        // can prove quiescence at either granularity; the brackets
        // nest (global begun, block begun, store, block completed,
        // global completed) but each word's proof stands alone.
        //
        // On the completed bump, when the low half wraps its +1 carries
        // into the begun half; `bump_completed` cancels the carry so
        // both halves stay exact mod 2³². Between its two RMWs readers
        // can see `begun` inflated by one — the safe direction (a
        // spurious "write in flight" only costs a validation sweep,
        // never a false quiescence claim). Without this, one wrap would
        // leave `begun == completed + 1` at quiescence *forever*,
        // permanently disabling the scan's summary short-circuit after
        // 2³² writes.
        let block = &self.blocks[Self::block_of(index)];
        bump_begun(&self.summary);
        bump_begun(block);
        self.registers.get(index).write(value);
        bump_completed(block);
        bump_completed(&self.summary);
        Ok(())
    }

    /// Reads every register once, in index order, returning the observed
    /// values with their stamps.
    ///
    /// A single collect is *not* a linearizable view of the whole array
    /// (writes may interleave between the per-register reads) — unless
    /// [`summary`](RegisterArray::summary) reads bracketing it satisfy
    /// [`WriteSummary::no_writes_during`]. The `ts-snapshot` scan
    /// packages that check; use it when an atomic view is required.
    pub fn collect(&self) -> Vec<Stamped<T>> {
        (0..self.capacity())
            .map(|i| self.read_stamped(i).expect("index in range"))
            .collect()
    }

    /// Reads every register's stamp once, in index order — a collect
    /// that only observes *whether* registers changed, at the cost of
    /// one stamp read each (no value clones). The scan's validation
    /// sweeps use this instead of a second full collect.
    pub fn collect_stamps(&self) -> Vec<Stamp> {
        (0..self.capacity())
            .map(|i| self.stamp(i).expect("index in range"))
            .collect()
    }
}

impl<T, B> fmt::Debug for RegisterArray<T, B>
where
    T: Clone + Send + Sync + fmt::Debug,
    B: RegisterBackend<T>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisterArray")
            .field("capacity", &self.capacity())
            .field("layout", &self.layout())
            .field("values", &self.collect())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_holds_initial_everywhere() {
        let array: RegisterArray<u32> = RegisterArray::new(4, 7);
        assert_eq!(array.layout(), ArrayLayout::Padded);
        for i in 0..4 {
            assert_eq!(array.read(i).unwrap(), 7);
        }
    }

    #[test]
    fn packed_array_holds_initial_everywhere() {
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(4, 7);
        for i in 0..4 {
            assert_eq!(array.read(i).unwrap(), 7);
        }
    }

    #[test]
    fn compact_layout_behaves_identically() {
        let array: RegisterArray<u32> = RegisterArray::with_layout(3, 0, ArrayLayout::Compact);
        assert_eq!(array.layout(), ArrayLayout::Compact);
        assert_eq!(ArrayLayout::Compact.label(), "compact");
        array.write(1, 9).unwrap();
        assert_eq!(array.read(1).unwrap(), 9);
        assert_eq!(array.summary().generation(), 1);
    }

    #[test]
    fn out_of_range_read_errors() {
        let array: RegisterArray<u32> = RegisterArray::new(2, 0);
        let err = array.read(2).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.capacity, 2);
    }

    #[test]
    fn out_of_range_write_errors() {
        let array: RegisterArray<u32> = RegisterArray::new(2, 0);
        assert!(array.write(5, 1).is_err());
    }

    #[test]
    fn collect_returns_all_values_in_order_on_both_backends() {
        fn run<B: RegisterBackend<u32>>(array: RegisterArray<u32, B>) {
            array.write(0, 10).unwrap();
            array.write(2, 30).unwrap();
            let view = array.collect();
            let values: Vec<u32> = view.into_iter().map(|s| s.value).collect();
            assert_eq!(values, vec![10, 0, 30]);
        }
        run(RegisterArray::<u32>::new(3, 0));
        run(RegisterArray::<u32, PackedBackend>::with_backend(3, 0));
    }

    #[test]
    fn stamps_detect_rewrites_on_both_backends() {
        fn run<B: RegisterBackend<u32>>(array: RegisterArray<u32, B>) {
            let before = array.read_stamped(0).unwrap();
            array.write(0, before.value).unwrap();
            let after = array.read_stamped(0).unwrap();
            assert_eq!(before.value, after.value);
            assert_ne!(before.stamp, after.stamp, "ABA rewrite went undetected");
            assert_eq!(array.stamp(0).unwrap(), after.stamp);
        }
        run(RegisterArray::<u32>::new(1, 5));
        run(RegisterArray::<u32, PackedBackend>::with_backend(1, 5));
    }

    #[test]
    fn summary_counts_writes_and_detects_quiescence() {
        let array: RegisterArray<u32> = RegisterArray::new(3, 0);
        let s0 = array.summary();
        assert_eq!(s0.begun(), 0);
        assert_eq!(s0.completed(), 0);
        let s1 = array.summary();
        assert!(WriteSummary::no_writes_during(s0, s1));

        array.write(0, 1).unwrap();
        array.write(1, 2).unwrap();
        let s2 = array.summary();
        assert_eq!(s2.begun(), 2);
        assert_eq!(s2.generation(), 2);
        assert!(!WriteSummary::no_writes_during(s0, s2));
        assert!(WriteSummary::no_writes_during(s2, array.summary()));
    }

    #[test]
    fn summary_survives_the_completed_half_wrap() {
        // Seed the word at begun == completed == u32::MAX (4 billion
        // quiescent writes ago) and cross the wrap: the carry the
        // completed bump pushes into begun must be cancelled, so the
        // quiescence check keeps working on the far side.
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(1, 0);
        let seeded = (u64::from(u32::MAX) << 32) | u64::from(u32::MAX);
        array.summary.store(seeded, Ordering::SeqCst);
        array.write(0, 7).unwrap();
        let s = array.summary();
        assert_eq!(s.begun(), 0, "begun must wrap cleanly");
        assert_eq!(s.completed(), 0, "completed must wrap cleanly");
        assert!(
            WriteSummary::no_writes_during(s, array.summary()),
            "quiescence detection must survive the 2^32 wrap"
        );
        // And writes keep counting normally afterwards.
        array.write(0, 8).unwrap();
        assert_eq!(array.summary().generation(), 1);
    }

    #[test]
    fn block_counts_cover_the_boundary_sizes() {
        for (capacity, blocks) in [
            (0, 0),
            (1, 1),
            (63, 1),
            (64, 1),
            (65, 2),
            (128, 2),
            (129, 3),
        ] {
            let array: PackedRegisterArray<u32> = RegisterArray::new_packed(capacity, 0);
            assert_eq!(array.block_count(), blocks, "capacity {capacity}");
            if blocks > 0 {
                let mut covered = 0;
                for b in 0..blocks {
                    let range = array.block_range(b);
                    assert_eq!(range.start, covered);
                    covered = range.end;
                }
                assert_eq!(covered, capacity, "blocks must tile the array");
            }
        }
    }

    #[test]
    fn writes_dirty_only_their_own_block() {
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(65, 0);
        let pre = array.block_summaries();
        array.write(64, 9).unwrap();
        let post = array.block_summaries();
        assert!(
            WriteSummary::no_writes_during(pre[0], post[0]),
            "block 0 must stay clean"
        );
        assert!(
            !WriteSummary::no_writes_during(pre[1], post[1]),
            "block 1 must record the write"
        );
        assert_eq!(post[1].generation(), 1);
        // The global summary still sees every write.
        assert_eq!(array.summary().generation(), 1);
        assert_eq!(PackedRegisterArray::<u32>::block_of(64), 1);
        assert_eq!(PackedRegisterArray::<u32>::block_of(63), 0);
    }

    #[test]
    fn block_summary_survives_the_completed_half_wrap() {
        // Same carry-cancel regression as the global summary word
        // (`summary_survives_the_completed_half_wrap`), on a block
        // dirty word: seed it at begun == completed == u32::MAX and
        // cross the wrap.
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(1, 0);
        let seeded = (u64::from(u32::MAX) << 32) | u64::from(u32::MAX);
        array.blocks[0].store(seeded, Ordering::SeqCst);
        array.write(0, 7).unwrap();
        let s = array.block_summary(0);
        assert_eq!(s.begun(), 0, "block begun must wrap cleanly");
        assert_eq!(s.completed(), 0, "block completed must wrap cleanly");
        assert!(
            WriteSummary::no_writes_during(s, array.block_summary(0)),
            "block quiescence detection must survive the 2^32 wrap"
        );
        array.write(0, 8).unwrap();
        assert_eq!(array.block_summary(0).generation(), 1);
    }

    #[test]
    fn tail_block_summary_survives_the_completed_half_wrap() {
        // The wrap-carry regression on the partial tail block of a
        // boundary-sized array: seed block 1 (covering only register
        // 64 of a 65-register array) at begun == completed == u32::MAX
        // and cross the wrap. Block 0 must stay untouched throughout.
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(65, 0);
        let seeded = (u64::from(u32::MAX) << 32) | u64::from(u32::MAX);
        array.blocks[1].store(seeded, Ordering::SeqCst);
        let block0_before = array.block_summary(0);
        array.write(64, 7).unwrap();
        let s = array.block_summary(1);
        assert_eq!(s.begun(), 0, "tail block begun must wrap cleanly");
        assert_eq!(s.completed(), 0, "tail block completed must wrap cleanly");
        assert!(
            WriteSummary::no_writes_during(s, array.block_summary(1)),
            "tail block quiescence detection must survive the 2^32 wrap"
        );
        assert!(
            WriteSummary::no_writes_during(block0_before, array.block_summary(0)),
            "a tail-block write must not dirty block 0"
        );
        array.write(64, 8).unwrap();
        assert_eq!(array.block_summary(1).generation(), 1);
    }

    #[test]
    fn block_summary_loads_are_unmetered() {
        let meter = SpaceMeter::new(3);
        let array = RegisterArray::with_meter(3, 0u32, meter.clone());
        let _ = array.block_summaries();
        let _ = array.summary();
        assert_eq!(
            meter.snapshot().total_reads(),
            0,
            "summary words are auxiliary state, not registers"
        );
    }

    #[test]
    fn collect_stamps_matches_full_collect() {
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(3, 0);
        array.write(2, 5).unwrap();
        let full: Vec<Stamp> = array.collect().into_iter().map(|s| s.stamp).collect();
        assert_eq!(array.collect_stamps(), full);
    }

    #[test]
    fn padded_registers_sit_on_distinct_cache_lines() {
        let array: PackedRegisterArray<u32> = RegisterArray::new_packed(4, 0);
        match &array.registers {
            Slots::Padded(regs) => {
                for pair in regs.windows(2) {
                    let a = (&*pair[0]) as *const _ as usize;
                    let b = (&*pair[1]) as *const _ as usize;
                    assert!(b - a >= 128, "registers {a:#x}/{b:#x} share a line");
                }
            }
            Slots::Compact(_) => panic!("default layout must be padded"),
        }
    }

    #[test]
    fn metered_array_reports_operations() {
        let meter = SpaceMeter::new(3);
        let array = RegisterArray::with_meter(3, 0u32, meter.clone());
        array.write(1, 5).unwrap();
        let _ = array.collect();
        let snap = meter.snapshot();
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(snap.total_reads(), 3);
        assert_eq!(snap.max_written_index(), Some(1));
    }

    #[test]
    fn metered_packed_array_reports_operations() {
        let meter = SpaceMeter::new(2);
        let array: PackedRegisterArray<u8> =
            RegisterArray::with_backend_and_meter(2, 0, meter.clone());
        array.write(0, 1).unwrap();
        let _ = array.read(1).unwrap();
        let snap = meter.snapshot();
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(snap.total_reads(), 1);
    }

    #[test]
    #[should_panic(expected = "meter capacity must match")]
    fn mismatched_meter_capacity_panics() {
        let meter = SpaceMeter::new(2);
        let _ = RegisterArray::with_meter(3, 0u32, meter);
    }

    #[test]
    fn zero_capacity_array_is_usable() {
        let array: RegisterArray<u8> = RegisterArray::new(0, 0);
        assert_eq!(array.capacity(), 0);
        assert!(array.collect().is_empty());
        assert!(array.collect_stamps().is_empty());
        assert!(array.read(0).is_err());
    }
}
