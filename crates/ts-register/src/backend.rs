//! Pluggable register storage backends.
//!
//! The paper's algorithms are written against an abstract atomic MWMR
//! register; *how* such a register is realized is an implementation
//! choice with very different performance envelopes:
//!
//! - [`EpochBackend`] — an atomic pointer to an immutable heap cell with
//!   epoch-based reclamation ([`StampedRegister`]). Supports values of
//!   **any size** (Algorithm 4's registers hold growing sequences of
//!   getTS-ids), at the cost of an allocation per write and an epoch pin
//!   per operation.
//! - [`PackedBackend`] — the value bit-packed into a single `AtomicU64`
//!   next to its write stamp ([`PackedRegister`]). Reads and writes are
//!   single hardware atomics — no allocation, no pinning, no
//!   reclamation — but the value must implement [`Packable`]
//!   (≤ 32 bits).
//!
//! A [`RegisterBackend`] type parameter threads this choice through
//! [`RegisterArray`](crate::RegisterArray), the `ts-snapshot` scan and
//! the `ts-core` algorithm constructors, so an algorithm is written once
//! and instantiated with whichever backend fits its slot type.
//!
//! # Which backend should I use?
//!
//! Use `PackedBackend` when every value the register will ever hold fits
//! [`Packable`]'s 32-bit budget — e.g. the `{0, 1, 2}` slots of the
//! simple one-shot algorithm or collect-max counters. Use `EpochBackend`
//! when values are unbounded or non-`Copy` — e.g. Algorithm 4's
//! `⟨seq, rnd⟩` pairs. The contention benchmark (`bench_contention` in
//! `ts-bench`) quantifies the gap.
//!
//! # Ordering contract (all backends, one place)
//!
//! Every register type in this crate — [`StampedRegister`],
//! [`PackedRegister`], [`WordRegister`](crate::WordRegister) — obeys
//! the same two-part memory-ordering contract, and every consumer
//! (`RegisterArray`, the `ts-snapshot` scan, the `ts-core` algorithms)
//! assumes exactly this much and no more:
//!
//! 1. **Per-register coherence.** All writes to one register form a
//!    single modification order; a thread's reads of that register
//!    never move backwards along it. Even `Relaxed` atomics provide
//!    this; it is what "register values never decrease" arguments
//!    (Lemma 5.1) consume.
//! 2. **Acquire/Release publication.** `write` is (at least) `Release`
//!    and `read`/`read_stamped`/`stamp` are (at least) `Acquire`: a
//!    read that observes a write also observes everything its writer
//!    did before it. This is the cross-register happens-before edge
//!    the algorithms build on ("a getTS that sees my increment sees my
//!    earlier writes too"). `SeqCst` — one total order over unrelated
//!    registers — is used by none of the proofs and none of the
//!    backends' data paths.
//!
//! Change detection is part of the same contract, routed through one
//! accessor: [`BackendRegister::stamp`]. Two `stamp()` calls on the
//! same register returning equal stamps observed the same write —
//! exactly (`StampedRegister` global counter, `PackedRegister`
//! per-register counter) or under the documented monotone-contents
//! caveat (`WordRegister::stamp`, value-as-stamp). The scan compares
//! stamps only register-wise and only through this accessor.
//!
//! Two pieces sit deliberately *outside* the Acquire/Release budget:
//! the per-array write-summary word
//! ([`RegisterArray::summary`](crate::RegisterArray::summary)) uses
//! `SeqCst` bumps and loads, because its quiescence proof counts
//! events across *different* threads' writes and must not let summary
//! bumps reorder around the bracketed register accesses; and the
//! collect-max cached maximum (`ts-core`) uses CAS/fetch-max RMWs,
//! whose read-modify-write atomicity — not ordering — carries its
//! monotonicity argument.

use crate::packed::{Packable, PackedRegister};
use crate::stamped::{Stamp, Stamped, StampedRegister};
use crate::traits::Register;

/// The register interface a backend must materialize: construction,
/// plain reads/writes (via [`Register`]), stamped reads for the
/// double-collect scan, and a zero-copy read.
///
/// Stamp semantics: two `read_stamped` calls **on the same register**
/// returning equal stamps observed the same write. Backends may or may
/// not make stamps unique across registers ([`StampedRegister`] does,
/// [`PackedRegister`] does not); the scan only compares stamps
/// register-wise, so cross-register uniqueness is not part of the
/// contract.
pub trait BackendRegister<T>: Register<T> {
    /// Creates a register holding `initial` under [`Stamp::INITIAL`].
    fn with_initial(initial: T) -> Self;

    /// Returns the current value together with its write stamp.
    fn read_stamped(&self) -> Stamped<T>;

    /// Returns just the stamp of the current value.
    fn stamp(&self) -> Stamp;

    /// Applies `f` to the current value without cloning it out.
    fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R;
}

/// A storage strategy for stamped MWMR registers, selecting the concrete
/// register type for a value type `T`.
///
/// Implemented by [`EpochBackend`] (any `T: Clone`) and
/// [`PackedBackend`] (`T: Packable`); downstream crates can add their
/// own (e.g. a futex-based blocking register, or a remote register à la
/// `dist-register`) without touching the algorithm layer.
pub trait RegisterBackend<T>: Send + Sync + 'static {
    /// The concrete register type this backend materializes.
    type Reg: BackendRegister<T> + Send + Sync;

    /// Short lower-case name for benchmark/report labels ("epoch",
    /// "packed"). Third-party backends get a generic default.
    const NAME: &'static str = "custom";
}

/// Backend marker: heap-cell registers with epoch-based reclamation
/// ([`StampedRegister`] over [`AtomicRegister`](crate::AtomicRegister)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochBackend;

/// Backend marker: word-inlined registers ([`PackedRegister`]), no heap
/// and no epoch machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedBackend;

impl<T: Clone + Send + Sync + 'static> RegisterBackend<T> for EpochBackend {
    type Reg = StampedRegister<T>;

    const NAME: &'static str = "epoch";
}

impl<T: Packable> RegisterBackend<T> for PackedBackend {
    type Reg = PackedRegister<T>;

    const NAME: &'static str = "packed";
}

impl<T: Clone + Send + Sync> BackendRegister<T> for StampedRegister<T> {
    fn with_initial(initial: T) -> Self {
        StampedRegister::new(initial)
    }

    fn read_stamped(&self) -> Stamped<T> {
        StampedRegister::read_stamped(self)
    }

    fn stamp(&self) -> Stamp {
        StampedRegister::stamp(self)
    }

    fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        StampedRegister::read_with(self, f)
    }
}

impl<T: Packable> BackendRegister<T> for PackedRegister<T> {
    fn with_initial(initial: T) -> Self {
        PackedRegister::new(initial)
    }

    fn read_stamped(&self) -> Stamped<T> {
        PackedRegister::read_stamped(self)
    }

    fn stamp(&self) -> Stamp {
        PackedRegister::stamp(self)
    }

    fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        PackedRegister::read_with(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<B: RegisterBackend<u64>>() {
        let reg = B::Reg::with_initial(0);
        assert_eq!(reg.stamp(), Stamp::INITIAL);
        reg.write(5);
        let s = reg.read_stamped();
        assert_eq!(s.value, 5);
        assert_ne!(s.stamp, Stamp::INITIAL);
        assert_eq!(reg.read_with(|v| v + 1), 6);
        assert_eq!(Register::read(&reg), 5);
    }

    #[test]
    fn both_backends_satisfy_the_contract() {
        exercise::<EpochBackend>();
        exercise::<PackedBackend>();
    }
}
