//! Historyless swap objects (Section 7 of the paper).
//!
//! A *historyless* object's state depends only on the last non-trivial
//! operation applied to it; registers and swap ("fetch-and-store")
//! objects are the canonical examples. The paper's one-shot lower bound
//! (Theorem 1.2) holds verbatim when registers are replaced by any
//! historyless objects, because the covering processes in its
//! construction never take further steps after their block-writes; this
//! type exists so that claim has a concrete object in the repository
//! (and so downstream experiments can swap it in for registers).

use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use crate::traits::Register;

/// A wait-free atomic swap object: `swap` stores a new value and
/// returns the previous one; `read` is a plain register read.
///
/// # Example
///
/// ```
/// use ts_register::SwapRegister;
///
/// let cell = SwapRegister::new(0u64);
/// assert_eq!(cell.swap(7), 0);
/// assert_eq!(cell.swap(9), 7);
/// assert_eq!(cell.read(), 9);
/// ```
pub struct SwapRegister<T> {
    cell: Atomic<T>,
}

impl<T: Clone + Send + Sync> SwapRegister<T> {
    /// Creates a swap object holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            cell: Atomic::new(initial),
        }
    }

    /// Returns a clone of the current value.
    pub fn read(&self) -> T {
        let guard = epoch::pin();
        let shared = self.cell.load(Ordering::Acquire, &guard);
        // SAFETY: never null; guard keeps the pointee alive.
        unsafe { shared.deref().clone() }
    }

    /// Atomically replaces the value with `value`, returning the old
    /// value — the historyless fetch-and-store primitive.
    pub fn swap(&self, value: T) -> T {
        let guard = epoch::pin();
        let old = self.cell.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was a live cell; readers are protected by their
        // own guards until they unpin.
        let result = unsafe { old.deref().clone() };
        unsafe {
            guard.defer_destroy(old);
        }
        result
    }

    /// Plain write (a swap whose return value is discarded).
    pub fn write(&self, value: T) {
        let _ = self.swap(value);
    }
}

impl<T: Clone + Send + Sync> Register<T> for SwapRegister<T> {
    fn read(&self) -> T {
        SwapRegister::read(self)
    }

    fn write(&self, value: T) {
        SwapRegister::write(self, value)
    }
}

impl<T: Clone + Send + Sync + Default> Default for SwapRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for SwapRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SwapRegister").field(&self.read()).finish()
    }
}

impl<T> Drop for SwapRegister<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let shared = self
            .cell
            .swap(epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !shared.is_null() {
            // SAFETY: `&mut self` excludes concurrent access going
            // forward; deferral protects historical readers.
            unsafe {
                guard.defer_destroy(shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn swap_returns_previous_value() {
        let cell = SwapRegister::new(1u32);
        assert_eq!(cell.swap(2), 1);
        assert_eq!(cell.swap(3), 2);
        assert_eq!(cell.read(), 3);
    }

    #[test]
    fn register_trait_write_discards_old() {
        let cell = SwapRegister::new(0u32);
        Register::write(&cell, 5);
        assert_eq!(Register::read(&cell), 5);
    }

    #[test]
    fn default_uses_type_default() {
        let cell: SwapRegister<u64> = SwapRegister::default();
        assert_eq!(cell.read(), 0);
    }

    #[test]
    fn concurrent_swaps_form_a_chain() {
        // Every value enters the cell exactly once and leaves exactly
        // once: collecting all swap-returns plus the final read must
        // recover every inserted value plus the initial one.
        let cell = Arc::new(SwapRegister::new(0u64));
        let threads = 4;
        let per_thread = 200;
        let returned: Vec<u64> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cell = Arc::clone(&cell);
                    s.spawn(move |_| {
                        (0..per_thread)
                            .map(|i| cell.swap(1 + (t * per_thread + i) as u64))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();
        let mut all: HashSet<u64> = returned.into_iter().collect();
        all.insert(cell.read());
        let expected: HashSet<u64> = (0..=(threads * per_thread) as u64).collect();
        assert_eq!(all, expected, "a swapped value was lost or duplicated");
    }

    #[test]
    fn debug_renders_value() {
        let cell = SwapRegister::new(9u8);
        assert_eq!(format!("{cell:?}"), "SwapRegister(9)");
    }
}
