//! Atomic multi-writer multi-reader register substrate.
//!
//! The algorithms of Helmi, Higham, Pacheco and Woelfel (PODC 2011) are
//! expressed over *atomic registers*: shared cells supporting linearizable
//! `read` and `write` of arbitrarily large values (the registers of
//! Algorithm 4 hold sequences of getTS-ids). Hardware atomics only cover
//! word-sized values, so this crate provides a wait-free, linearizable
//! register of any `T: Clone` built from an atomic pointer swap with
//! epoch-based memory reclamation.
//!
//! The crate also provides the measurement machinery the paper's results
//! are *about*: [`SpaceMeter`] tracks which registers an execution reads
//! and writes so that the space bounds of Theorems 1.1–1.3 can be checked
//! against running code.
//!
//! # Example
//!
//! ```
//! use ts_register::AtomicRegister;
//!
//! let reg = AtomicRegister::new(vec![1u64, 2, 3]);
//! reg.write(vec![4, 5]);
//! assert_eq!(reg.read(), vec![4, 5]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod atomic;
mod error;
mod meter;
mod stamped;
mod swap;
mod traits;
mod word;

pub use array::RegisterArray;
pub use atomic::AtomicRegister;
pub use error::CapacityError;
pub use meter::{MeterSnapshot, MeteredRegister, SpaceMeter};
pub use stamped::{Stamp, Stamped, StampedRegister};
pub use swap::SwapRegister;
pub use traits::Register;
pub use word::WordRegister;
