//! Atomic multi-writer multi-reader register substrate.
//!
//! The algorithms of Helmi, Higham, Pacheco and Woelfel (PODC 2011) are
//! expressed over *atomic registers*: shared cells supporting linearizable
//! `read` and `write` of arbitrarily large values (the registers of
//! Algorithm 4 hold sequences of getTS-ids). Hardware atomics only cover
//! word-sized values, so this crate provides a wait-free, linearizable
//! register of any `T: Clone` built from an atomic pointer swap with
//! epoch-based memory reclamation.
//!
//! The crate also provides the measurement machinery the paper's results
//! are *about*: [`SpaceMeter`] tracks which registers an execution reads
//! and writes so that the space bounds of Theorems 1.1–1.3 can be checked
//! against running code.
//!
//! # Register backends
//!
//! How a register stores its value is pluggable via [`RegisterBackend`]:
//!
//! | Backend | Register type | Values | Cost per op |
//! |---|---|---|---|
//! | [`EpochBackend`] (default) | [`StampedRegister`] | any `T: Clone` | heap cell per write, epoch pin per op |
//! | [`PackedBackend`] | [`PackedRegister`] | [`Packable`] (≤ 32 bits) | one hardware atomic, nothing else |
//!
//! Pick `PackedBackend` whenever the register's contents fit a word for
//! the object's whole lifetime (the simple one-shot algorithm's
//! `{0, 1, 2}` slots, collect-max counters): it bypasses allocation and
//! reclamation entirely, which is worth an order of magnitude under
//! contention (see `bench_contention` in `ts-bench`). Keep
//! `EpochBackend` for unbounded contents such as Algorithm 4's
//! `⟨seq, rnd⟩` sequences. [`RegisterArray`] and the `ts-snapshot` scan
//! are generic over the choice; `ts-core` constructors expose it.
//!
//! # Contention-aware layout
//!
//! [`CachePadded`] puts contended state on its own cache line(s);
//! [`RegisterArray`] lays registers out one-per-line by default
//! ([`ArrayLayout`]) and maintains a [`WriteSummary`] word — begun and
//! completed write counts in one `AtomicU64` — that lets the
//! `ts-snapshot` scan prove "nothing changed while I collected" from
//! two one-word loads and skip its second collect. The memory-ordering
//! contract every backend obeys lives in the [`backend`] module docs.
//!
//! # Example
//!
//! ```
//! use ts_register::AtomicRegister;
//!
//! let reg = AtomicRegister::new(vec![1u64, 2, 3]);
//! reg.write(vec![4, 5]);
//! assert_eq!(reg.read(), vec![4, 5]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod atomic;
pub mod backend;
mod error;
mod meter;
mod packed;
mod pad;
pub mod reclaim;
mod stamped;
mod swap;
mod traits;
mod word;

pub use array::{
    ArrayLayout, PackedRegisterArray, RegisterArray, Slots, WriteSummary, BLOCK_REGISTERS,
};
pub use atomic::AtomicRegister;
pub use backend::{BackendRegister, EpochBackend, PackedBackend, RegisterBackend};
pub use error::CapacityError;
pub use meter::{MeterSnapshot, MeteredRegister, SpaceMeter};
pub use packed::{Packable, PackedRegister};
pub use pad::CachePadded;
pub use stamped::{Stamp, Stamped, StampedRegister};
pub use swap::SwapRegister;
pub use traits::Register;
pub use word::WordRegister;
