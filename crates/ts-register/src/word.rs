//! Word-sized register backed directly by a hardware atomic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::traits::Register;

/// A register holding a `u64`, backed by [`AtomicU64`].
///
/// The simple one-shot algorithm of Section 5 (Algorithms 1–2) only stores
/// values in `{0, 1, 2}` per register, so it does not need the
/// pointer-based [`AtomicRegister`](crate::AtomicRegister); this type maps
/// its registers straight onto hardware atomics. The packed
/// generalization (any [`Packable`](crate::Packable) value plus a write
/// stamp in one word) is [`PackedRegister`](crate::PackedRegister).
///
/// # Memory ordering
///
/// Operations use the `Acquire`/`Release` pair, not `SeqCst`. This is
/// enough for every correctness argument the suite builds on word
/// registers:
///
/// - **Single-register linearizability** comes from per-location
///   coherence, which every atomic ordering (even `Relaxed`) provides:
///   all writes to one `AtomicU64` form a single modification order,
///   and a thread's reads of it never go backwards along that order.
///   Lemma 5.1's "register values never decrease" argument needs exactly
///   this.
/// - **Cross-register happens-before** is what the algorithms add on
///   top: a `getTS` that observes another's increment must also observe
///   everything that process did earlier (e.g. its writes to
///   lower-indexed registers). The `Release` on
///   [`write`](WordRegister::write) publishes the writer's prior
///   operations; the `Acquire` on [`read`](WordRegister::read) makes a
///   read that observes the write synchronize with it, establishing that
///   edge.
///
/// What `SeqCst` would add — one total order over operations on
/// *different* registers that no thread's happens-before path certifies
/// (IRIW-style agreement) — is used by none of the proofs: the timestamp
/// property only constrains operation pairs ordered by real time, and
/// any such pair is ordered through the synchronizing reads above.
///
/// # Example
///
/// ```
/// use ts_register::{Register, WordRegister};
///
/// let reg = WordRegister::new(0);
/// reg.write(2);
/// assert_eq!(reg.read(), 2);
/// ```
pub struct WordRegister {
    cell: AtomicU64,
}

impl WordRegister {
    /// Creates a word register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self {
            cell: AtomicU64::new(initial),
        }
    }

    /// Returns the current value.
    ///
    /// `Acquire`: a read that observes a [`write`](WordRegister::write)
    /// synchronizes with it, so everything the writer did before the
    /// write is visible to this reader — the happens-before edge the
    /// algorithms' "later calls see earlier increments" arguments use.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }

    /// Replaces the current value.
    ///
    /// `Release`: pairs with the `Acquire` in
    /// [`read`](WordRegister::read), publishing this thread's prior
    /// reads and writes to any reader that observes the new value.
    pub fn write(&self, value: u64) {
        self.cell.store(value, Ordering::Release)
    }

    /// The value *as* its own change stamp.
    ///
    /// A bare word register has no room for a write counter, so this is
    /// the one backend where change detection is value-based: two reads
    /// returning equal stamps observed the same write **only if the
    /// register's contents are strictly monotone** (every write stores
    /// a value larger than the last), which holds for every counter the
    /// suite stores in a `WordRegister`. For non-monotone contents this
    /// is ABA-unsafe — use [`PackedRegister`](crate::PackedRegister),
    /// whose stamps are real per-write counters. The scan-facing
    /// contract all three accessors share is documented in
    /// [`crate::backend`].
    pub fn stamp(&self) -> crate::Stamp {
        crate::Stamp::from_raw(self.read())
    }
}

impl Register<u64> for WordRegister {
    fn read(&self) -> u64 {
        WordRegister::read(self)
    }

    fn write(&self, value: u64) {
        WordRegister::write(self, value)
    }
}

impl Default for WordRegister {
    fn default() -> Self {
        Self::new(0)
    }
}

impl fmt::Debug for WordRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("WordRegister").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        assert_eq!(WordRegister::new(5).read(), 5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(WordRegister::default().read(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let r = WordRegister::new(0);
        r.write(17);
        assert_eq!(r.read(), 17);
    }

    #[test]
    fn debug_shows_value() {
        let r = WordRegister::new(9);
        assert_eq!(format!("{r:?}"), "WordRegister(9)");
    }

    #[test]
    fn stamp_tracks_monotone_values() {
        let r = WordRegister::new(0);
        let s0 = r.stamp();
        r.write(3);
        let s1 = r.stamp();
        assert_ne!(s0, s1, "a monotone write must change the value-stamp");
        assert_eq!(s1, r.stamp(), "no write, no stamp change");
        assert_eq!(s1.as_u64(), 3);
    }
}
