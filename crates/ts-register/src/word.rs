//! Word-sized register backed directly by a hardware atomic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::traits::Register;

/// A register holding a `u64`, backed by [`AtomicU64`].
///
/// The simple one-shot algorithm of Section 5 (Algorithms 1–2) only stores
/// values in `{0, 1, 2}` per register, so it does not need the
/// pointer-based [`AtomicRegister`](crate::AtomicRegister); this type maps
/// its registers straight onto hardware atomics with sequentially
/// consistent ordering, preserving linearizability.
///
/// # Example
///
/// ```
/// use ts_register::{Register, WordRegister};
///
/// let reg = WordRegister::new(0);
/// reg.write(2);
/// assert_eq!(reg.read(), 2);
/// ```
pub struct WordRegister {
    cell: AtomicU64,
}

impl WordRegister {
    /// Creates a word register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self {
            cell: AtomicU64::new(initial),
        }
    }

    /// Returns the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    /// Replaces the current value.
    pub fn write(&self, value: u64) {
        self.cell.store(value, Ordering::SeqCst)
    }
}

impl Register<u64> for WordRegister {
    fn read(&self) -> u64 {
        WordRegister::read(self)
    }

    fn write(&self, value: u64) {
        WordRegister::write(self, value)
    }
}

impl Default for WordRegister {
    fn default() -> Self {
        Self::new(0)
    }
}

impl fmt::Debug for WordRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("WordRegister").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        assert_eq!(WordRegister::new(5).read(), 5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(WordRegister::default().read(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let r = WordRegister::new(0);
        r.write(17);
        assert_eq!(r.read(), 17);
    }

    #[test]
    fn debug_shows_value() {
        let r = WordRegister::new(9);
        assert_eq!(format!("{r:?}"), "WordRegister(9)");
    }
}
