//! Inline bit-packed registers over a single hardware word.
//!
//! The epoch-based [`AtomicRegister`](crate::AtomicRegister) supports
//! values of any size by storing them behind an atomic pointer — at the
//! cost of a heap allocation per write and an epoch pin per operation.
//! Algorithms whose register contents fit in (part of) a machine word —
//! the `{0, 1, 2}` slots of the simple one-shot algorithm, collect-max
//! counters — do not need any of that: [`PackedRegister`] stores the
//! value *inline* in an `AtomicU64`, together with a per-register write
//! stamp, so reads and writes are single hardware atomics with no
//! allocation, no pinning, and no reclamation.
//!
//! No seqlock is needed either: because value and stamp share one word,
//! a single `load` yields a consistent (value, stamp) pair.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::stamped::{Stamp, Stamped};
use crate::traits::Register;

/// A value that can be packed into the low bits of a machine word.
///
/// Implementations must be faithful: `unpack(pack(v)) == v` for every
/// valid `v`, and `pack` must use only the low [`BITS`](Packable::BITS)
/// bits. `BITS` is capped at 32 so that every packed register keeps at
/// least 32 bits of write stamp (see [`PackedRegister`] for why).
///
/// An implementation may support only a sub-range of its type and panic
/// in `pack` outside it — the provided `u64` impl packs values up to
/// `u32::MAX` and panics beyond, because timestamp counters never get
/// near that while a full-range `u64` would leave no stamp bits. Values
/// that genuinely need the full range belong in the epoch backend.
pub trait Packable: Copy + Send + Sync + 'static {
    /// Number of low bits `pack` may use (1..=32).
    const BITS: u32;

    /// Packs the value into the low [`BITS`](Packable::BITS) bits.
    fn pack(self) -> u64;

    /// Inverse of [`pack`](Packable::pack).
    fn unpack(bits: u64) -> Self;
}

impl Packable for bool {
    const BITS: u32 = 1;

    fn pack(self) -> u64 {
        self as u64
    }

    fn unpack(bits: u64) -> Self {
        bits != 0
    }
}

impl Packable for u8 {
    const BITS: u32 = 8;

    fn pack(self) -> u64 {
        self as u64
    }

    fn unpack(bits: u64) -> Self {
        bits as u8
    }
}

impl Packable for u16 {
    const BITS: u32 = 16;

    fn pack(self) -> u64 {
        self as u64
    }

    fn unpack(bits: u64) -> Self {
        bits as u16
    }
}

impl Packable for u32 {
    const BITS: u32 = 32;

    fn pack(self) -> u64 {
        self as u64
    }

    fn unpack(bits: u64) -> Self {
        bits as u32
    }
}

impl Packable for u64 {
    const BITS: u32 = 32;

    /// # Panics
    ///
    /// Panics if the value exceeds `u32::MAX`: the packed backend is for
    /// small slot contents (timestamp counters, phase numbers); values
    /// needing the full 64-bit range must use the epoch backend.
    fn pack(self) -> u64 {
        assert!(
            self <= u64::from(u32::MAX),
            "value {self} does not fit the packed register's 32-bit range; \
             use the epoch backend for full-range u64 contents"
        );
        self
    }

    fn unpack(bits: u64) -> Self {
        bits
    }
}

/// A register storing a small value inline in one `AtomicU64`,
/// generalizing [`WordRegister`](crate::WordRegister) to any
/// [`Packable`] type and adding per-register write stamps.
///
/// # Layout and stamps
///
/// The word is `[stamp : 64 − BITS][value : BITS]`. Each write draws a
/// fresh stamp from a per-register counter (a wait-free `fetch_add`) and
/// installs `(stamp, value)` with a single store, so a read — a single
/// load — always observes a consistent pair. Stamps make the register
/// usable under the double-collect scan: two reads of the *same
/// register* returning equal stamps are guaranteed to have observed the
/// same write.
///
/// Two caveats relative to [`StampedRegister`](crate::StampedRegister):
///
/// - stamps are unique **per register**, not globally (each register has
///   its own counter). The scan only ever compares stamps of the same
///   register, so this is sufficient for exact change detection;
/// - the stamp field has `64 − BITS ≥ 32` bits and wraps after `2^32`
///   or more writes *to one register*. A scan would then be fooled only
///   if a register were written an exact multiple of `2^32` times
///   between two consecutive collects, which no real schedule does.
///
/// Unlike concurrent writes to a [`StampedRegister`](crate::StampedRegister), the stamp draw and
/// the store are two steps, so stamps may be installed out of numeric
/// order; stamps are identifiers, not a total order.
///
/// # Example
///
/// ```
/// use ts_register::{PackedRegister, Register};
///
/// let reg: PackedRegister<u64> = PackedRegister::new(0);
/// reg.write(2);
/// assert_eq!(reg.read(), 2);
/// ```
pub struct PackedRegister<T: Packable> {
    cell: AtomicU64,
    next_stamp: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: Packable> PackedRegister<T> {
    /// Compile-time check that the value leaves at least 32 stamp bits.
    const LAYOUT_OK: () = assert!(
        T::BITS >= 1 && T::BITS <= 32,
        "Packable::BITS must be in 1..=32 so the register keeps >= 32 stamp bits"
    );

    const STAMP_MASK: u64 = (1u64 << (64 - T::BITS)) - 1;
    const VALUE_MASK: u64 = if T::BITS == 64 {
        u64::MAX
    } else {
        (1u64 << T::BITS) - 1
    };

    /// Creates a packed register holding `initial` with
    /// [`Stamp::INITIAL`].
    pub fn new(initial: T) -> Self {
        // Force the layout check at monomorphization time.
        let () = Self::LAYOUT_OK;
        Self {
            cell: AtomicU64::new(initial.pack()),
            next_stamp: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    fn decode(word: u64) -> Stamped<T> {
        Stamped {
            value: T::unpack(word & Self::VALUE_MASK),
            stamp: Stamp::from_raw(word >> T::BITS),
        }
    }

    /// Returns the current value.
    ///
    /// `Acquire` pairs with the `Release` in [`write`](Self::write): a
    /// reader that observes a write also observes everything the writer
    /// did before it — the same pairs
    /// [`WordRegister`](crate::WordRegister) uses.
    pub fn read(&self) -> T {
        T::unpack(self.cell.load(Ordering::Acquire) & Self::VALUE_MASK)
    }

    /// Returns the current value together with its write stamp, from one
    /// atomic load.
    pub fn read_stamped(&self) -> Stamped<T> {
        Self::decode(self.cell.load(Ordering::Acquire))
    }

    /// Returns just the stamp of the current value.
    pub fn stamp(&self) -> Stamp {
        self.read_stamped().stamp
    }

    /// Applies `f` to the current value.
    ///
    /// Provided for signature parity with
    /// [`AtomicRegister::read_with`](crate::AtomicRegister::read_with);
    /// since packed values are `Copy`, the value is unpacked into a
    /// local first (there is no heap cell to borrow).
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.read())
    }

    /// Replaces the current value under a fresh per-register stamp.
    ///
    /// Wait-free: one `fetch_add` (stamp draw) plus one `Release` store.
    pub fn write(&self, value: T) {
        let mut stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        // Stamp 0 is reserved for the initial value; skip it on wrap.
        while stamp & Self::STAMP_MASK == 0 {
            stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        }
        let word = ((stamp & Self::STAMP_MASK) << T::BITS) | value.pack();
        self.cell.store(word, Ordering::Release);
    }
}

impl<T: Packable> Register<T> for PackedRegister<T> {
    fn read(&self) -> T {
        PackedRegister::read(self)
    }

    fn write(&self, value: T) {
        PackedRegister::write(self, value)
    }
}

impl<T: Packable + Default> Default for PackedRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Packable + fmt::Debug> fmt::Debug for PackedRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PackedRegister").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_all_impls() {
        assert!(PackedRegister::new(true).read());
        assert_eq!(PackedRegister::new(200u8).read(), 200);
        assert_eq!(PackedRegister::new(60_000u16).read(), 60_000);
        assert_eq!(PackedRegister::new(u32::MAX).read(), u32::MAX);
        assert_eq!(
            PackedRegister::new(u64::from(u32::MAX)).read(),
            u64::from(u32::MAX)
        );
    }

    #[test]
    fn initial_value_has_initial_stamp() {
        let reg: PackedRegister<u8> = PackedRegister::new(3);
        let s = reg.read_stamped();
        assert_eq!(s.value, 3);
        assert_eq!(s.stamp, Stamp::INITIAL);
    }

    #[test]
    fn rewriting_same_value_changes_stamp() {
        let reg: PackedRegister<u64> = PackedRegister::new(1);
        reg.write(1);
        let a = reg.read_stamped();
        reg.write(1);
        let b = reg.read_stamped();
        assert_eq!(a.value, b.value);
        assert_ne!(a.stamp, b.stamp);
    }

    #[test]
    #[should_panic(expected = "32-bit range")]
    fn oversized_u64_is_rejected() {
        let reg: PackedRegister<u64> = PackedRegister::new(0);
        reg.write(u64::from(u32::MAX) + 1);
    }

    #[test]
    fn read_with_sees_current_value() {
        let reg: PackedRegister<u32> = PackedRegister::new(7);
        assert_eq!(reg.read_with(|v| v + 1), 8);
    }

    #[test]
    fn debug_and_default() {
        let reg: PackedRegister<u16> = PackedRegister::default();
        assert_eq!(format!("{reg:?}"), "PackedRegister(0)");
    }

    #[test]
    fn concurrent_readers_see_consistent_pairs() {
        // Stamp INITIAL only ever accompanies the initial value: any
        // (value, stamp) pair read must be internally consistent because
        // both live in one word.
        let reg: Arc<PackedRegister<u32>> = Arc::new(PackedRegister::new(0));
        crossbeam::scope(|s| {
            let writer = Arc::clone(&reg);
            s.spawn(move |_| {
                for i in 1..=20_000u32 {
                    writer.write(i);
                }
            });
            for _ in 0..3 {
                let reader = Arc::clone(&reg);
                s.spawn(move |_| {
                    for _ in 0..20_000 {
                        let s = reader.read_stamped();
                        if s.stamp == Stamp::INITIAL {
                            assert_eq!(s.value, 0, "non-initial value under initial stamp");
                        } else {
                            assert!(s.value >= 1);
                        }
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn single_writer_readers_observe_monotone_values() {
        let reg: Arc<PackedRegister<u64>> = Arc::new(PackedRegister::new(0));
        crossbeam::scope(|s| {
            let writer = Arc::clone(&reg);
            s.spawn(move |_| {
                for i in 1..=20_000u64 {
                    writer.write(i);
                }
            });
            for _ in 0..2 {
                let reader = Arc::clone(&reg);
                s.spawn(move |_| {
                    let mut last = 0u64;
                    for _ in 0..20_000 {
                        let v = reader.read();
                        assert!(
                            v >= last,
                            "packed register went backwards: {v} after {last}"
                        );
                        last = v;
                    }
                });
            }
        })
        .unwrap();
    }
}
