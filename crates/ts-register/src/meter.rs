//! Space and operation instrumentation.
//!
//! The paper's results bound the *number of registers* an implementation
//! uses. [`SpaceMeter`] observes a register array and records, per
//! register: how many reads and writes it served and whether it was ever
//! written. The derived quantities (`registers_written`,
//! `registers_accessed`, `max_written_index`) are exactly what the
//! experiment tables of EXPERIMENTS.md report against the paper's bounds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::traits::Register;

#[derive(Debug, Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Shared recorder of per-register read/write counts.
///
/// Clone the meter (cheap; internally `Arc`) and attach it to registers
/// via [`SpaceMeter::wrap`] or record manually with
/// [`SpaceMeter::record_read`] / [`SpaceMeter::record_write`].
///
/// # Example
///
/// ```
/// use ts_register::{AtomicRegister, Register, SpaceMeter};
///
/// let meter = SpaceMeter::new(4);
/// let reg = meter.wrap(1, AtomicRegister::new(0u64));
/// reg.write(9);
/// reg.read();
/// let snap = meter.snapshot();
/// assert_eq!(snap.registers_written(), 1);
/// assert_eq!(snap.reads[1], 1);
/// ```
#[derive(Clone)]
pub struct SpaceMeter {
    counters: Arc<Vec<Counters>>,
}

impl SpaceMeter {
    /// Creates a meter for an array of `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, Counters::default);
        Self {
            counters: Arc::new(v),
        }
    }

    /// Number of registers the meter observes.
    pub fn capacity(&self) -> usize {
        self.counters.len()
    }

    /// Records a read of register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn record_read(&self, index: usize) {
        self.counters[index].reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write of register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn record_write(&self, index: usize) {
        self.counters[index].writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Wraps `register` so that all operations on it are recorded under
    /// `index`.
    pub fn wrap<T, R: Register<T>>(&self, index: usize, register: R) -> MeteredRegister<R> {
        assert!(
            index < self.capacity(),
            "register index {index} out of meter capacity {}",
            self.capacity()
        );
        MeteredRegister {
            inner: register,
            meter: self.clone(),
            index,
        }
    }

    /// Takes a consistent-enough snapshot of the counters.
    ///
    /// Counter updates are relaxed; the snapshot is exact once the metered
    /// execution has quiesced (which is how the experiment harness uses
    /// it).
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            reads: self
                .counters
                .iter()
                .map(|c| c.reads.load(Ordering::Relaxed))
                .collect(),
            writes: self
                .counters
                .iter()
                .map(|c| c.writes.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl fmt::Debug for SpaceMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaceMeter")
            .field("capacity", &self.capacity())
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// Immutable view of a [`SpaceMeter`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Reads served per register index.
    pub reads: Vec<u64>,
    /// Writes served per register index.
    pub writes: Vec<u64>,
}

impl MeterSnapshot {
    /// Number of registers that were written at least once.
    ///
    /// This is the paper's space-consumption measure: a register that is
    /// never written (like Algorithm 4's trailing sentinel) still counts
    /// toward the *allocation* but the bounds are phrased over registers
    /// that carry information.
    pub fn registers_written(&self) -> usize {
        self.writes.iter().filter(|&&w| w > 0).count()
    }

    /// Number of registers that were read or written at least once.
    pub fn registers_accessed(&self) -> usize {
        self.reads
            .iter()
            .zip(&self.writes)
            .filter(|(&r, &w)| r > 0 || w > 0)
            .count()
    }

    /// Highest register index that was written, if any.
    pub fn max_written_index(&self) -> Option<usize> {
        self.writes.iter().rposition(|&w| w > 0)
    }

    /// Total number of read operations.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total number of write operations.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

/// A register wrapper that records its operations in a [`SpaceMeter`].
#[derive(Debug)]
pub struct MeteredRegister<R> {
    inner: R,
    meter: SpaceMeter,
    index: usize,
}

impl<R> MeteredRegister<R> {
    /// The index under which this register reports.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Unwraps the underlying register.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<T, R: Register<T>> Register<T> for MeteredRegister<R> {
    fn read(&self) -> T {
        self.meter.record_read(self.index);
        self.inner.read()
    }

    fn write(&self, value: T) {
        self.meter.record_write(self.index);
        self.inner.write(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicRegister;

    #[test]
    fn empty_meter_snapshot_is_zero() {
        let meter = SpaceMeter::new(3);
        let snap = meter.snapshot();
        assert_eq!(snap.registers_written(), 0);
        assert_eq!(snap.registers_accessed(), 0);
        assert_eq!(snap.max_written_index(), None);
    }

    #[test]
    fn reads_and_writes_are_counted_separately() {
        let meter = SpaceMeter::new(2);
        let r0 = meter.wrap(0, AtomicRegister::new(0u64));
        let r1 = meter.wrap(1, AtomicRegister::new(0u64));
        r0.read();
        r0.read();
        r1.write(1);
        let snap = meter.snapshot();
        assert_eq!(snap.reads, vec![2, 0]);
        assert_eq!(snap.writes, vec![0, 1]);
        assert_eq!(snap.registers_written(), 1);
        assert_eq!(snap.registers_accessed(), 2);
        assert_eq!(snap.max_written_index(), Some(1));
        assert_eq!(snap.total_reads(), 2);
        assert_eq!(snap.total_writes(), 1);
    }

    #[test]
    #[should_panic(expected = "out of meter capacity")]
    fn wrapping_out_of_capacity_panics() {
        let meter = SpaceMeter::new(1);
        let _ = meter.wrap(1, AtomicRegister::new(0u64));
    }

    #[test]
    fn metered_register_reports_index_and_unwraps() {
        let meter = SpaceMeter::new(1);
        let reg = meter.wrap(0, AtomicRegister::new(5u64));
        assert_eq!(reg.index(), 0);
        let inner = reg.into_inner();
        assert_eq!(inner.read(), 5);
    }
}
