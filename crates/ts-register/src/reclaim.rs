//! Reclamation hooks for workloads with thread churn.
//!
//! The epoch backend defers frees until no pinned thread can still hold
//! the old cell; reclamation is amortized over future pins, and garbage
//! owned by an *exited* thread is handed to a global orphan stack for
//! surviving threads to adopt. Under heavy thread churn (workers joining
//! and leaving mid-run, as in the `ts-workloads` churn scenarios) a
//! supervisor should periodically call [`flush`] so orphaned bags are
//! adopted and freed promptly instead of waiting for the next incidental
//! pin.
//!
//! These functions are no-ops in effect for purely packed-backend
//! workloads (nothing is ever deferred there), so callers can invoke
//! them unconditionally.

/// Seals the calling thread's garbage bag, attempts one epoch advance,
/// and reclaims everything already two epochs behind — including bags
/// orphaned by exited threads.
///
/// One call advances the epoch by at most one; [`drain`] loops until the
/// gauge stops improving.
pub fn flush() {
    crossbeam_epoch::flush();
}

/// Cells currently deferred but not yet reclaimed, process-wide (a
/// momentary snapshot of the epoch backend's garbage gauge).
///
/// Churn/leak tests assert this does **not** grow monotonically across
/// worker generations; see `ts-workloads`' churn reclamation stress.
pub fn deferred_outstanding() -> usize {
    crossbeam_epoch::deferred_outstanding()
}

/// Flushes repeatedly (up to `max_rounds`) until the deferred-garbage
/// gauge stops decreasing, then returns the remaining outstanding count.
///
/// A freshly sealed bag expires only once the global epoch has advanced
/// **twice** past its seal tag, and each flush advances the epoch by at
/// most one — so the gauge legitimately stays flat for a couple of
/// rounds before the first free. The loop therefore tolerates a few
/// consecutive no-progress rounds before concluding it is done.
///
/// With no concurrently pinned threads this drains everything the
/// calling thread can legally reclaim; concurrent pinners can keep a
/// bounded remainder alive (the two-epochs-behind rule), which is why
/// the remainder is returned instead of asserted here.
pub fn drain(max_rounds: usize) -> usize {
    let mut outstanding = deferred_outstanding();
    let mut flat_rounds = 0;
    for _ in 0..max_rounds {
        flush();
        let now = deferred_outstanding();
        if now < outstanding {
            flat_rounds = 0;
        } else {
            flat_rounds += 1;
            // Seal + two advances = up to three flushes with no visible
            // progress; one extra round of headroom.
            if flat_rounds >= 4 {
                return now;
            }
        }
        outstanding = now;
    }
    outstanding
}

#[cfg(test)]
mod tests {
    use crate::AtomicRegister;

    #[test]
    fn drain_reclaims_this_threads_writes() {
        let baseline = super::deferred_outstanding();
        let reg = AtomicRegister::new(0u64);
        for i in 0..500 {
            reg.write(i);
        }
        // 500 old cells were deferred by this thread; drain must
        // actually free them, not merely avoid making things worse.
        // Other unit tests run concurrently and may park a small
        // unsealed bag (< 64 cells) per idle thread or transiently pin
        // (stalling the epoch), so allow slack and retry rather than
        // asserting one call's outcome.
        let slack = 256;
        let mut after = super::drain(10_000);
        for _ in 0..1_000 {
            if after <= baseline + slack {
                break;
            }
            std::thread::yield_now();
            after = super::drain(10_000);
        }
        assert!(
            after <= baseline + slack,
            "drain left {after} cells outstanding (baseline {baseline}): \
             our 500 deferred cells were not reclaimed"
        );
    }

    #[test]
    fn flush_is_callable_without_any_epoch_traffic() {
        // Packed-only workloads call the hooks unconditionally.
        super::flush();
        let _ = super::deferred_outstanding();
    }
}
