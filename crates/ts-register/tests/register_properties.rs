//! Property and stress tests for the register substrate.

use std::sync::Arc;

use proptest::prelude::*;
use ts_register::{
    ArrayLayout, AtomicRegister, EpochBackend, PackedBackend, PackedRegister, Register,
    RegisterArray, RegisterBackend, SpaceMeter, StampedRegister, SwapRegister, WordRegister,
    WriteSummary,
};

proptest! {
    /// Write-then-read returns the written value for every register
    /// flavour (sequential linearizability floor).
    #[test]
    fn write_read_round_trip(values in proptest::collection::vec(any::<u64>(), 1..50)) {
        let atomic = AtomicRegister::new(0u64);
        let word = WordRegister::new(0);
        let stamped = StampedRegister::new(0u64);
        let swap = SwapRegister::new(0u64);
        for &v in &values {
            atomic.write(v);
            prop_assert_eq!(atomic.read(), v);
            word.write(v);
            prop_assert_eq!(word.read(), v);
            stamped.write(v);
            prop_assert_eq!(StampedRegister::read(&stamped), v);
            SwapRegister::write(&swap, v);
            prop_assert_eq!(SwapRegister::read(&swap), v);
        }
    }

    /// Stamps strictly increase along a register's own write history.
    #[test]
    fn stamps_increase_monotonically(values in proptest::collection::vec(any::<u8>(), 1..40)) {
        let reg = StampedRegister::new(0u8);
        let mut last = reg.read_stamped().stamp;
        for &v in &values {
            reg.write(v);
            let s = reg.read_stamped().stamp;
            prop_assert!(s > last);
            last = s;
        }
    }

    /// Sequential swaps return the exact previous-value chain.
    #[test]
    fn swap_chain_is_exact(values in proptest::collection::vec(any::<u64>(), 1..40)) {
        let cell = SwapRegister::new(0u64);
        let mut expected_prev = 0u64;
        for &v in &values {
            prop_assert_eq!(cell.swap(v), expected_prev);
            expected_prev = v;
        }
    }

    /// Meter snapshots add up: totals equal the sum of per-register
    /// counts and `registers_written` matches the nonzero write cells.
    #[test]
    fn meter_arithmetic_is_consistent(
        ops in proptest::collection::vec((0usize..8, any::<bool>()), 0..100)
    ) {
        let meter = SpaceMeter::new(8);
        let array = RegisterArray::with_meter(8, 0u64, meter.clone());
        for &(idx, is_write) in &ops {
            if is_write {
                array.write(idx, 1).unwrap();
            } else {
                let _ = array.read(idx).unwrap();
            }
        }
        let snap = meter.snapshot();
        prop_assert_eq!(
            snap.total_writes(),
            ops.iter().filter(|(_, w)| *w).count() as u64
        );
        prop_assert_eq!(
            snap.total_reads(),
            ops.iter().filter(|(_, w)| !*w).count() as u64
        );
        let written: std::collections::HashSet<usize> =
            ops.iter().filter(|(_, w)| *w).map(|(i, _)| *i).collect();
        prop_assert_eq!(snap.registers_written(), written.len());
        prop_assert_eq!(snap.max_written_index(), written.iter().max().copied());
    }
}

proptest! {
    /// Zero-copy reads under concurrency, epoch backend: `read_with`
    /// closures interleaved with writes must never observe a torn value
    /// (the two halves of the stored pair always agree) nor a stale
    /// value past a known linearization point (after the writer thread
    /// is joined, a read must return its last write).
    #[test]
    fn read_with_is_untorn_and_not_stale_epoch_backend(
        writers in 1usize..4,
        reader_ops in 1usize..400,
        rounds in 1u64..40,
    ) {
        let reg = Arc::new(AtomicRegister::new((0u64, 0u64)));
        crossbeam::scope(|s| {
            for w in 0..writers {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 1..=rounds {
                        let v = w as u64 * 1_000_000 + i;
                        reg.write((v, v));
                    }
                });
            }
            for _ in 0..2 {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    for _ in 0..reader_ops {
                        // The closure borrows the cell in place; a torn
                        // pair here would mean the epoch scheme let a
                        // writer mutate or free the cell under us.
                        reg.read_with(|&(a, b)| {
                            assert_eq!(a, b, "torn zero-copy read: ({a}, {b})");
                        });
                    }
                });
            }
        })
        .unwrap();
        // Writer joins are linearization points: the register now holds
        // some writer's final write, and `read_with` must see it.
        let (a, b) = reg.read_with(|&pair| pair);
        prop_assert_eq!(a, b);
        prop_assert!(
            a % 1_000_000 == rounds || (a == 0 && rounds == 0),
            "stale value past linearization: {} after {} rounds", a, rounds
        );
    }

    /// Zero-copy reads under concurrency, packed backend: a single
    /// writer's values are observed monotonically by every `read_with`
    /// reader (per-location coherence), and the final read equals the
    /// last write once the writer is joined.
    #[test]
    fn read_with_is_monotone_and_not_stale_packed_backend(
        reader_ops in 1usize..400,
        rounds in 1u64..2_000,
    ) {
        let reg: Arc<PackedRegister<u64>> = Arc::new(PackedRegister::new(0));
        crossbeam::scope(|s| {
            {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 1..=rounds {
                        reg.write(i);
                    }
                });
            }
            for _ in 0..2 {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    let mut last = 0u64;
                    for _ in 0..reader_ops {
                        let v = reg.read_with(|&v| v);
                        assert!(v >= last, "packed read_with went backwards: {v} after {last}");
                        last = v;
                    }
                });
            }
        })
        .unwrap();
        prop_assert_eq!(reg.read_with(|&v| v), rounds);
    }

    /// Interleaving `read_with` with same-thread writes observes every
    /// write immediately (program order), on both backends.
    #[test]
    fn read_with_sees_own_writes(values in proptest::collection::vec(0u64..u32::MAX as u64, 1..60)) {
        let epoch = AtomicRegister::new(0u64);
        let packed: PackedRegister<u64> = PackedRegister::new(0);
        for &v in &values {
            epoch.write(v);
            prop_assert_eq!(epoch.read_with(|&x| x), v);
            packed.write(v);
            prop_assert_eq!(packed.read_with(|&x| x), v);
        }
    }
}

proptest! {
    /// The write-summary word, sequentially: the generation never
    /// decreases, counts begun == completed at quiescence, equals the
    /// number of writes applied, and is layout-independent.
    #[test]
    fn summary_generation_is_monotone_and_exact(
        ops in proptest::collection::vec((0usize..6, any::<u32>()), 0..80),
        compact in any::<bool>(),
    ) {
        let layout = if compact { ArrayLayout::Compact } else { ArrayLayout::Padded };
        let array: RegisterArray<u32, PackedBackend> = RegisterArray::with_layout(6, 0, layout);
        let mut last_generation = array.summary().generation();
        prop_assert_eq!(last_generation, 0);
        for (applied, &(idx, v)) in ops.iter().enumerate() {
            array.write(idx, v).unwrap();
            let s = array.summary();
            prop_assert!(
                s.generation() >= last_generation,
                "generation went backwards: {} after {}",
                s.generation(),
                last_generation
            );
            prop_assert_eq!(s.generation(), (applied + 1) as u32);
            prop_assert_eq!(s.begun(), s.completed(), "quiescent array has no in-flight writes");
            last_generation = s.generation();
        }
    }

    /// Summary mismatch ⇒ some register stamp changed (and conversely,
    /// an unchanged summary over a quiescent window ⇒ no stamp moved):
    /// the two change-detection mechanisms of the scan agree.
    #[test]
    fn summary_mismatch_implies_a_stamp_changed(
        before_ops in proptest::collection::vec((0usize..5, any::<u32>()), 0..20),
        after_ops in proptest::collection::vec((0usize..5, any::<u32>()), 0..20),
    ) {
        let array: RegisterArray<u32, PackedBackend> = RegisterArray::with_backend(5, 0);
        for &(idx, v) in &before_ops {
            array.write(idx, v).unwrap();
        }
        let s0 = array.summary();
        let stamps0 = array.collect_stamps();
        for &(idx, v) in &after_ops {
            array.write(idx, v).unwrap();
        }
        let s1 = array.summary();
        let stamps1 = array.collect_stamps();
        if !WriteSummary::no_writes_during(s0, s1) {
            // The summary said "something changed": a per-register
            // stamp must agree (packed stamps are exact per register).
            prop_assert!(!after_ops.is_empty());
            // (The summary said "something changed": a per-register
            // stamp must agree — packed stamps are exact per register.)
            prop_assert_ne!(stamps0, stamps1);
        } else {
            prop_assert!(after_ops.is_empty());
            prop_assert_eq!(stamps0, stamps1);
        }
    }

    /// Concurrent writers: the summary's begun count observed after the
    /// storm equals the total writes, and every intermediate observation
    /// is monotone in both halves.
    #[test]
    fn summary_counts_are_monotone_under_concurrency(
        writers in 1usize..4,
        writes_each in 1u64..300,
    ) {
        let array = Arc::new(RegisterArray::<u32, PackedBackend>::with_backend(4, 0));
        crossbeam::scope(|s| {
            for w in 0..writers {
                let array = Arc::clone(&array);
                s.spawn(move |_| {
                    for i in 0..writes_each {
                        array.write(w % 4, i as u32).unwrap();
                    }
                });
            }
            let array = Arc::clone(&array);
            s.spawn(move |_| {
                let mut last = array.summary();
                for _ in 0..200 {
                    let s = array.summary();
                    assert!(s.begun() >= last.begun(), "begun went backwards");
                    assert!(s.completed() >= last.completed(), "completed went backwards");
                    assert!(s.begun() >= s.completed(), "completed overtook begun");
                    last = s;
                }
            });
        })
        .unwrap();
        let end = array.summary();
        prop_assert_eq!(end.begun() as u64, writers as u64 * writes_each);
        prop_assert_eq!(end.completed(), end.begun());
    }

    /// `read_with` torn/stale properties hold on padded and compact
    /// array layouts alike: a single-writer register's values are
    /// observed monotonically through the array API, and the final
    /// value is the last write.
    #[test]
    fn read_with_properties_hold_on_padded_arrays(
        rounds in 1u32..1_500,
        compact in any::<bool>(),
    ) {
        let layout = if compact { ArrayLayout::Compact } else { ArrayLayout::Padded };
        let array = Arc::new(RegisterArray::<u32, PackedBackend>::with_layout(2, 0, layout));
        crossbeam::scope(|s| {
            {
                let array = Arc::clone(&array);
                s.spawn(move |_| {
                    for i in 1..=rounds {
                        array.write(0, i).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let array = Arc::clone(&array);
                s.spawn(move |_| {
                    let mut last = 0u32;
                    for _ in 0..300 {
                        let v = array.read(0).unwrap();
                        assert!(v >= last, "padded array read went backwards: {v} after {last}");
                        last = v;
                        // The untouched neighbour register must never
                        // bleed (padding or not): it stays 0.
                        assert_eq!(array.read(1).unwrap(), 0);
                    }
                });
            }
        })
        .unwrap();
        prop_assert_eq!(array.read(0).unwrap(), rounds);
        prop_assert_eq!(array.summary().generation(), rounds);
    }
}

/// Shared body for the dirty-word soundness property, generic over the
/// register backend so one strategy run covers both.
///
/// Brackets a write batch between two `block_summaries` readings and
/// checks, per block:
///
/// - **soundness** — a block whose word pair proves quiescence
///   (`no_writes_during`) had no stamp move inside the window, so a
///   retrying scanner that skips it cannot miss a write;
/// - **completeness** — every block that was actually written is
///   flagged (sequentially the flagged set is *exactly* the written
///   set; under concurrency it may only over-approximate).
fn check_dirty_word_soundness<B: RegisterBackend<u32>>(
    capacity: usize,
    layout: ArrayLayout,
    writes: &[(usize, u32)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let array: RegisterArray<u32, B> = RegisterArray::with_layout(capacity, 0, layout);
    let pre = array.block_summaries();
    let stamps_pre = array.collect_stamps();
    let mut written_blocks = std::collections::HashSet::new();
    for &(idx, v) in writes {
        let idx = idx % capacity;
        array.write(idx, v).unwrap();
        written_blocks.insert(RegisterArray::<u32, B>::block_of(idx));
    }
    let post = array.block_summaries();
    let stamps_post = array.collect_stamps();
    for b in 0..array.block_count() {
        let range = array.block_range(b);
        if WriteSummary::no_writes_during(pre[b], post[b]) {
            prop_assert_eq!(
                &stamps_pre[range.clone()],
                &stamps_post[range.clone()],
                "block {} claimed quiescence but a stamp moved",
                b
            );
            prop_assert!(
                !written_blocks.contains(&b),
                "written block {} not flagged",
                b
            );
        } else {
            prop_assert!(
                written_blocks.contains(&b),
                "block {} flagged without a write (sequential run)",
                b
            );
        }
    }
    Ok(())
}

proptest! {
    /// Dirty-word soundness across the block boundary capacities
    /// (63 = one partial block, 64 = one exact block, 65 = a full
    /// block plus a one-register tail), both backends, both layouts:
    /// a clear bitmap window implies no stamp in that block moved,
    /// and every written block is flagged.
    #[test]
    fn dirty_words_are_sound_and_complete(
        size_sel in 0usize..3,
        compact in any::<bool>(),
        writes in proptest::collection::vec((0usize..65, any::<u32>()), 0..60),
    ) {
        let capacity = [63usize, 64, 65][size_sel];
        let layout = if compact { ArrayLayout::Compact } else { ArrayLayout::Padded };
        check_dirty_word_soundness::<PackedBackend>(capacity, layout, &writes)?;
        check_dirty_word_soundness::<EpochBackend>(capacity, layout, &writes)?;
    }

    /// Block dirty words observed concurrently are monotone in both
    /// halves and, once the writers join, prove quiescence again for
    /// every block — including the partial tail block of a 65-register
    /// array.
    #[test]
    fn dirty_words_are_monotone_under_concurrency(
        writes_each in 1u64..200,
    ) {
        let array = Arc::new(RegisterArray::<u32, PackedBackend>::with_backend(65, 0));
        crossbeam::scope(|s| {
            for w in 0..2usize {
                let array = Arc::clone(&array);
                // One writer per block: register 0 (block 0) and
                // register 64 (the tail block).
                s.spawn(move |_| {
                    for i in 0..writes_each {
                        array.write(w * 64, i as u32).unwrap();
                    }
                });
            }
            let array = Arc::clone(&array);
            s.spawn(move |_| {
                let mut last = array.block_summaries();
                for _ in 0..100 {
                    let cur = array.block_summaries();
                    for (b, (prev, next)) in last.iter().zip(&cur).enumerate() {
                        assert!(next.begun() >= prev.begun(), "block {b} begun went backwards");
                        assert!(
                            next.completed() >= prev.completed(),
                            "block {b} completed went backwards"
                        );
                        assert!(next.begun() >= next.completed(), "block {b} completed overtook");
                    }
                    last = cur;
                }
            });
        })
        .unwrap();
        let quiet = array.block_summaries();
        for (b, s) in quiet.iter().enumerate() {
            prop_assert_eq!(s.begun(), s.completed(), "block {} still in flight at join", b);
            prop_assert_eq!(s.generation() as u64, writes_each, "block {} lost writes", b);
        }
        prop_assert!(WriteSummary::no_writes_during(quiet[0], array.block_summary(0)));
        prop_assert!(WriteSummary::no_writes_during(quiet[1], array.block_summary(1)));
    }
}

#[test]
fn atomic_register_readers_see_prefix_closed_history() {
    // A single writer writes 1..N in order; any reader sequence of
    // observations must be non-decreasing (reads can't go back in time
    // on a single-writer register).
    let reg = Arc::new(AtomicRegister::new(0u64));
    crossbeam::scope(|s| {
        let w = Arc::clone(&reg);
        s.spawn(move |_| {
            for v in 1..=20_000u64 {
                w.write(v);
            }
        });
        for _ in 0..4 {
            let r = Arc::clone(&reg);
            s.spawn(move |_| {
                let mut last = 0u64;
                for _ in 0..5_000 {
                    let v = r.read();
                    assert!(v >= last, "read went backwards: {v} after {last}");
                    last = v;
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn stamped_register_stamps_never_repeat_across_threads() {
    let reg = Arc::new(StampedRegister::new(0u64));
    let observed: Vec<(u64, ts_register::Stamp)> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                s.spawn(move |_| {
                    let mut seen = Vec::new();
                    for i in 0..500u64 {
                        reg.write(t as u64 * 1000 + i);
                        let st = reg.read_stamped();
                        seen.push((st.value, st.stamp));
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
    .unwrap();
    // A stamp uniquely determines the value it was written with.
    use std::collections::HashMap;
    let mut stamp_to_value: HashMap<ts_register::Stamp, u64> = HashMap::new();
    for (value, stamp) in observed {
        if let Some(&prev) = stamp_to_value.get(&stamp) {
            assert_eq!(prev, value, "one stamp, two values");
        } else {
            stamp_to_value.insert(stamp, value);
        }
    }
}
