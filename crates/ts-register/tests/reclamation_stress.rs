//! Reclamation stress suite for the lock-free epoch scheme underneath
//! [`AtomicRegister`].
//!
//! Every write to an `AtomicRegister` retires the previous heap cell
//! through `crossbeam-epoch`. These tests drive N writer × M reader
//! workloads over `AtomicRegister<Arc<u64>>` with a drop-counting
//! payload and assert the two properties a reclamation scheme owes us:
//!
//! - **exactly once** — no double free: the drop count never exceeds the
//!   number of retired cells (a double free would also abort under the
//!   system allocator, but the counter catches double *drops* of the
//!   payload even when the allocator stays silent);
//! - **nothing leaks** — after all guards unpin and the register is
//!   gone, repeated [`crossbeam_epoch::flush`] calls reclaim every
//!   retired cell.
//!
//! Reclamation is amortized, so the drain loop calls `flush` until the
//! count settles (each call advances the epoch by at most one, and other
//! tests in this binary may hold transient pins).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ts_register::AtomicRegister;

/// The allocation whose lifetime is under test. `Arc` drops it exactly
/// once, when the last handle (the register cell or a reader's clone)
/// goes away, so the `dropped` counter is race-free and exact.
struct Payload {
    value: u64,
    counters: Arc<Counters>,
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.counters.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Register value: an `Arc<Payload>`, as the satellite task prescribes
/// (`AtomicRegister<Arc<u64>>` shape — the payload carries the counters
/// alongside the `u64`). Cloning (what `AtomicRegister::read` does)
/// bumps the refcount; only the final release drops the payload.
#[derive(Clone)]
struct Tracked {
    value: Arc<Payload>,
}

struct Counters {
    created: AtomicUsize,
    dropped: AtomicUsize,
}

impl Tracked {
    fn new(value: u64, counters: &Arc<Counters>) -> Self {
        counters.created.fetch_add(1, Ordering::Relaxed);
        Self {
            value: Arc::new(Payload {
                value,
                counters: Arc::clone(counters),
            }),
        }
    }
}

fn new_counters() -> Arc<Counters> {
    Arc::new(Counters {
        created: AtomicUsize::new(0),
        dropped: AtomicUsize::new(0),
    })
}

/// Flushes the epoch until `dropped` reaches `expected` (bounded retry:
/// concurrent tests may pin transiently).
fn drain_until(counters: &Counters, expected: usize) {
    for _ in 0..100_000 {
        crossbeam_epoch::flush();
        if counters.dropped.load(Ordering::Relaxed) >= expected {
            return;
        }
        std::thread::yield_now();
    }
}

/// Core workload: `writers` threads × `writes_per_writer` writes against
/// one shared register, `readers` threads cloning values out
/// concurrently. Returns after asserting exact-once reclamation.
fn run_stress(writers: usize, readers: usize, writes_per_writer: usize) {
    let counters = new_counters();
    let reg = Arc::new(AtomicRegister::new(Tracked::new(0, &counters)));

    crossbeam::scope(|s| {
        for w in 0..writers {
            let reg = Arc::clone(&reg);
            let counters = Arc::clone(&counters);
            s.spawn(move |_| {
                for i in 0..writes_per_writer {
                    let v = (w * writes_per_writer + i + 1) as u64;
                    reg.write(Tracked::new(v, &counters));
                }
            });
        }
        for _ in 0..readers {
            let reg = Arc::clone(&reg);
            s.spawn(move |_| {
                let mut checksum = 0u64;
                for _ in 0..writes_per_writer {
                    // Hold the clone across a second read so cell
                    // lifetimes overlap reader-side.
                    let a = reg.read();
                    let b = reg.read();
                    checksum = checksum
                        .wrapping_add(a.value.value)
                        .wrapping_add(b.value.value);
                }
                std::hint::black_box(checksum);
            });
        }
    })
    .unwrap();

    // All guards are gone. Drop the register (retires the resident cell)
    // and drain.
    drop(reg);
    let created = counters.created.load(Ordering::Relaxed);
    drain_until(&counters, created);

    let dropped = counters.dropped.load(Ordering::Relaxed);
    assert_eq!(
        dropped, created,
        "leak or double drop: created {created} cells, dropped {dropped} \
         ({writers} writers x {writes_per_writer}, {readers} readers)"
    );
}

#[test]
fn single_writer_single_reader() {
    run_stress(1, 1, 4_000);
}

#[test]
fn many_writers_no_readers() {
    run_stress(4, 0, 2_000);
}

#[test]
fn many_writers_many_readers() {
    run_stress(4, 4, 2_000);
}

#[test]
fn reader_heavy() {
    run_stress(2, 6, 1_500);
}

#[test]
fn drops_never_exceed_retirements_mid_flight() {
    // Exact-once, checked *during* the run: at any instant the dropped
    // count can never exceed created (a double drop would overtake it,
    // since created counts every cell that ever existed).
    let counters = new_counters();
    let reg = Arc::new(AtomicRegister::new(Tracked::new(0, &counters)));
    crossbeam::scope(|s| {
        for w in 0..3 {
            let reg = Arc::clone(&reg);
            let counters = Arc::clone(&counters);
            s.spawn(move |_| {
                for i in 0..2_000u64 {
                    reg.write(Tracked::new(w * 10_000 + i, &counters));
                }
            });
        }
        let counters = Arc::clone(&counters);
        s.spawn(move |_| {
            for _ in 0..4_000 {
                let created = counters.created.load(Ordering::Relaxed);
                let dropped = counters.dropped.load(Ordering::Relaxed);
                assert!(
                    dropped <= created,
                    "double drop: {dropped} drops of {created} cells"
                );
            }
        });
    })
    .unwrap();
    drop(reg);
    let created = counters.created.load(Ordering::Relaxed);
    drain_until(&counters, created);
    assert_eq!(counters.dropped.load(Ordering::Relaxed), created);
}

#[test]
fn pinned_guard_blocks_reclamation_of_observed_cell() {
    // A value obtained under `read` stays usable while the register is
    // rewritten: the Arc clone keeps the payload alive independently,
    // and the epoch keeps the *cell* alive for readers that only borrow.
    let counters = new_counters();
    let reg = Arc::new(AtomicRegister::new(Tracked::new(7, &counters)));
    let held = reg.read();
    crossbeam::scope(|s| {
        let reg = Arc::clone(&reg);
        let counters = Arc::clone(&counters);
        s.spawn(move |_| {
            for i in 0..500 {
                reg.write(Tracked::new(100 + i, &counters));
            }
        });
    })
    .unwrap();
    assert_eq!(held.value.value, 7, "held value mutated under reclamation");
    drop(held);
    drop(reg);
    let created = counters.created.load(Ordering::Relaxed);
    drain_until(&counters, created);
    assert_eq!(counters.dropped.load(Ordering::Relaxed), created);
}
