//! Wait-free single-writer atomic snapshot (Afek et al. 1993).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ts_register::{Stamp, StampedRegister};

/// One component cell: the writer's value plus the view embedded by the
/// update that installed it.
#[derive(Debug, Clone)]
struct Cell<T> {
    value: T,
    /// View of all components embedded by the installing update; `None`
    /// only for the initial cell (which no scan ever needs to borrow,
    /// because an initial cell has never changed).
    embedded: Option<Arc<Vec<T>>>,
}

/// A wait-free single-writer atomic snapshot object with `n` components.
///
/// Each component `i` is owned by one writer (obtain the writing
/// capability with [`WaitFreeSnapshot::take_updater`]); any thread may
/// [`scan`](WaitFreeSnapshot::scan). Scans are linearizable and wait-free:
/// a scanner that observes some component change twice borrows the view
/// embedded in that component's latest update, which is guaranteed to have
/// been taken entirely within the scanner's interval.
///
/// This is the classic construction of Afek, Attiya, Dolev, Gafni,
/// Merritt and Shavit; Algorithm 4 of the paper only needs the cheaper
/// double-collect scan, but the full object is provided as an independent
/// substrate (and is used by the test suite as a linearizable reference).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ts_snapshot::WaitFreeSnapshot;
///
/// let snap = Arc::new(WaitFreeSnapshot::new(2, 0u64));
/// let updater = snap.take_updater(0).expect("component 0 unclaimed");
/// updater.update(5);
/// assert_eq!(snap.scan(), vec![5, 0]);
/// ```
pub struct WaitFreeSnapshot<T> {
    components: Vec<StampedRegister<Cell<T>>>,
    claimed: Vec<AtomicBool>,
}

impl<T: Clone + Send + Sync> WaitFreeSnapshot<T> {
    /// Creates a snapshot object with `n` components, all `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        Self {
            components: (0..n)
                .map(|_| {
                    StampedRegister::new(Cell {
                        value: initial.clone(),
                        embedded: None,
                    })
                })
                .collect(),
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the object has zero components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Claims the exclusive writer capability for component `index`.
    ///
    /// Returns `None` if the component was already claimed or the index is
    /// out of range. Single-writer discipline is what makes the borrowed
    /// embedded view linearizable, so the capability can be taken only
    /// once per component.
    pub fn take_updater(self: &Arc<Self>, index: usize) -> Option<Updater<T>> {
        if index >= self.components.len() {
            return None;
        }
        let already = self.claimed[index].swap(true, Ordering::AcqRel);
        if already {
            None
        } else {
            Some(Updater {
                snapshot: Arc::clone(self),
                index,
            })
        }
    }

    fn collect(&self) -> Vec<(Stamp, Cell<T>)> {
        self.components
            .iter()
            .map(|reg| {
                let s = reg.read_stamped();
                (s.stamp, s.value)
            })
            .collect()
    }

    /// Returns a linearizable view of all component values. Wait-free.
    pub fn scan(&self) -> Vec<T> {
        let n = self.components.len();
        let mut changes = vec![0usize; n];
        let mut previous = self.collect();
        loop {
            let current = self.collect();
            let mut clean = true;
            for j in 0..n {
                if current[j].0 != previous[j].0 {
                    clean = false;
                    changes[j] += 1;
                    if changes[j] >= 2 {
                        // Component j changed twice during this scan; the
                        // update that installed the second change ran its
                        // embedded scan entirely within our interval.
                        let view =
                            current[j].1.embedded.as_ref().expect(
                                "a changed cell was installed by an update and carries a view",
                            );
                        return view.as_ref().clone();
                    }
                }
            }
            if clean {
                return current.into_iter().map(|(_, cell)| cell.value).collect();
            }
            previous = current;
        }
    }

    fn update(&self, index: usize, value: T) {
        // Embed a fresh scan so concurrent scanners can borrow it.
        let view = Arc::new(self.scan());
        self.components[index].write(Cell {
            value,
            embedded: Some(view),
        });
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for WaitFreeSnapshot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitFreeSnapshot")
            .field("components", &self.scan())
            .finish()
    }
}

/// Exclusive writer capability for one component of a
/// [`WaitFreeSnapshot`].
///
/// Obtained from [`WaitFreeSnapshot::take_updater`]; dropping the updater
/// does *not* release the claim (the single-writer history must stay
/// single-writer for the lifetime of the object).
pub struct Updater<T> {
    snapshot: Arc<WaitFreeSnapshot<T>>,
    index: usize,
}

impl<T: Clone + Send + Sync> Updater<T> {
    /// The component this updater writes.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Writes `value` to the owned component, embedding a fresh scan.
    pub fn update(&self, value: T) {
        self.snapshot.update(self.index, value);
    }

    /// Scans through the underlying snapshot object.
    pub fn scan(&self) -> Vec<T> {
        self.snapshot.scan()
    }
}

impl<T> fmt::Debug for Updater<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Updater")
            .field("index", &self.index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_of_fresh_object_returns_initials() {
        let snap = WaitFreeSnapshot::new(3, 7u64);
        assert_eq!(snap.scan(), vec![7, 7, 7]);
    }

    #[test]
    fn update_is_visible_to_scan() {
        let snap = Arc::new(WaitFreeSnapshot::new(2, 0u64));
        let upd = snap.take_updater(1).unwrap();
        upd.update(42);
        assert_eq!(snap.scan(), vec![0, 42]);
    }

    #[test]
    fn updater_can_be_taken_once() {
        let snap = Arc::new(WaitFreeSnapshot::new(1, 0u64));
        assert!(snap.take_updater(0).is_some());
        assert!(snap.take_updater(0).is_none());
    }

    #[test]
    fn out_of_range_updater_is_none() {
        let snap = Arc::new(WaitFreeSnapshot::new(1, 0u64));
        assert!(snap.take_updater(5).is_none());
    }

    #[test]
    fn empty_snapshot() {
        let snap: WaitFreeSnapshot<u64> = WaitFreeSnapshot::new(0, 0);
        assert!(snap.is_empty());
        assert_eq!(snap.scan(), Vec::<u64>::new());
    }

    #[test]
    fn concurrent_scans_see_monotone_component_histories() {
        // Writer 0 writes 1,2,3,...; every scan must observe a value that
        // never decreases across sequential scans by the same thread.
        let snap = Arc::new(WaitFreeSnapshot::new(2, 0u64));
        let upd = snap.take_updater(0).unwrap();
        crossbeam::scope(|s| {
            s.spawn(move |_| {
                for k in 1..=2000u64 {
                    upd.update(k);
                }
            });
            for _ in 0..3 {
                let snap = Arc::clone(&snap);
                s.spawn(move |_| {
                    let mut last = 0u64;
                    for _ in 0..500 {
                        let view = snap.scan();
                        assert!(
                            view[0] >= last,
                            "scan went backwards: {} after {last}",
                            view[0]
                        );
                        last = view[0];
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn two_writers_two_components_scans_are_consistent() {
        // Writers keep components equal to their own step counters; a
        // scan (i, j) must be pairwise "close": each component is some
        // prefix of its writer's history, and a later scan dominates an
        // earlier one component-wise (monotone reads per scanner).
        let snap = Arc::new(WaitFreeSnapshot::new(2, 0u64));
        let u0 = snap.take_updater(0).unwrap();
        let u1 = snap.take_updater(1).unwrap();
        crossbeam::scope(|s| {
            s.spawn(move |_| {
                for k in 1..=1000u64 {
                    u0.update(k);
                }
            });
            s.spawn(move |_| {
                for k in 1..=1000u64 {
                    u1.update(k);
                }
            });
            let snap = Arc::clone(&snap);
            s.spawn(move |_| {
                let mut prev = vec![0u64, 0];
                for _ in 0..500 {
                    let cur = snap.scan();
                    assert!(
                        cur[0] >= prev[0] && cur[1] >= prev[1],
                        "non-monotone scans: {prev:?} then {cur:?}"
                    );
                    prev = cur;
                }
            });
        })
        .unwrap();
    }
}
