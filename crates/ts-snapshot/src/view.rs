//! Linearizable views of a register array.

use ts_register::{Stamp, Stamped};

/// A snapshot of all registers of an array, as returned by a successful
/// double collect.
///
/// A `View` captures both the values and the [`Stamp`]s of the writes that
/// installed them; stamp equality is what certifies that two collects saw
/// the same state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View<T> {
    entries: Vec<Stamped<T>>,
}

impl<T> View<T> {
    /// Wraps the entries of a collect into a view.
    pub fn new(entries: Vec<Stamped<T>>) -> Self {
        Self { entries }
    }

    /// Number of registers in the view.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view covers zero registers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stamped entries, in register order.
    pub fn entries(&self) -> &[Stamped<T>] {
        &self.entries
    }

    /// The stamp of each register's current write.
    pub fn stamps(&self) -> Vec<Stamp> {
        self.entries.iter().map(|e| e.stamp).collect()
    }

    /// Whether `self` and `other` observed exactly the same writes.
    ///
    /// This is the double-collect success criterion: comparing stamps
    /// (not values) makes the check immune to ABA rewrites.
    pub fn same_writes(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.stamp == b.stamp)
    }

    /// Consumes the view, returning the entries.
    pub fn into_entries(self) -> Vec<Stamped<T>> {
        self.entries
    }
}

impl<T: Clone> View<T> {
    /// The values, in register order (stamps dropped).
    pub fn values(&self) -> Vec<T> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }
}

impl<T> std::ops::Index<usize> for View<T> {
    type Output = Stamped<T>;

    fn index(&self, index: usize) -> &Self::Output {
        &self.entries[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_register::StampedRegister;

    fn stamped(v: u32) -> Stamped<u32> {
        // Use a real register to obtain a fresh stamp.
        let reg = StampedRegister::new(0u32);
        reg.write(v);
        reg.read_stamped()
    }

    #[test]
    fn same_writes_is_reflexive() {
        let view = View::new(vec![stamped(1), stamped(2)]);
        assert!(view.same_writes(&view.clone()));
    }

    #[test]
    fn same_values_different_stamps_are_different_writes() {
        let a = View::new(vec![stamped(1)]);
        let b = View::new(vec![stamped(1)]);
        assert_eq!(a.values(), b.values());
        assert!(!a.same_writes(&b));
    }

    #[test]
    fn length_mismatch_is_not_same_writes() {
        let a = View::new(vec![stamped(1)]);
        let b = View::new(vec![stamped(1), stamped(2)]);
        assert!(!a.same_writes(&b));
    }

    #[test]
    fn indexing_and_values() {
        let view = View::new(vec![stamped(5), stamped(6)]);
        assert_eq!(view[1].value, 6);
        assert_eq!(view.values(), vec![5, 6]);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
    }

    #[test]
    fn empty_view() {
        let view: View<u32> = View::new(vec![]);
        assert!(view.is_empty());
        assert_eq!(view.stamps(), vec![]);
    }
}
