//! The double-collect scan of Afek et al. (1993), with a
//! summary-validated fast path.

use std::error::Error;
use std::fmt;

use ts_register::{RegisterArray, RegisterBackend, WriteSummary};

use crate::view::View;

/// Error returned by [`try_scan`] when the attempt budget is exhausted
/// before a validated view was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanInterrupted {
    /// Number of collects performed before giving up.
    pub collects: usize,
}

impl fmt::Display for ScanInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan interrupted: no successful double collect within {} collects",
            self.collects
        )
    }
}

impl Error for ScanInterrupted {}

fn collect_view<T, B>(array: &RegisterArray<T, B>) -> View<T>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    View::new(array.collect())
}

/// Repeatedly collects `array` until a collect is validated, and returns
/// that view.
///
/// # Validation ladder
///
/// Each round climbs as little of this ladder as contention forces:
///
/// 1. **Summary short-circuit** — read the array's write-summary word,
///    collect once, re-read the summary. If
///    [`WriteSummary::no_writes_during`] holds, no register store
///    executed anywhere in the window: the collect read a quiescent
///    array and is returned after *one* value sweep and two one-word
///    loads. This is the common case for quiescent and low-contention
///    arrays (and on oversubscribed hosts, where interfering writers
///    are mostly descheduled).
/// 2. **Stamp-validated second collect** — otherwise, sweep only the
///    per-register *stamps* ([`RegisterArray::collect_stamps`], no
///    value clones) and compare them register-wise with the first
///    collect's stamps. Equality is the classic double-collect success
///    criterion: two consecutive collects observed the very same
///    writes, so the view was simultaneously present at some point
///    between them.
/// 3. **Recollect** — some register changed; start a new round.
///
/// # Why linearizability is preserved
///
/// Step 2 is exactly Afek et al.'s argument, with the second collect
/// thinned to stamps (stamps are what the criterion compares; values
/// were already captured by the first sweep, and per-register stamp
/// equality certifies those values are still the current writes).
/// Step 1 is *stronger* than the classic criterion, not weaker: the
/// summary counts writes **begun** and **completed** separately, and
/// `no_writes_during` certifies that no write was begun, completed, or
/// in flight across the whole window — so the collect is a read of a
/// quiescent array, linearizable at any point inside the window. A
/// bare generation counter could not conclude this: a write *in
/// flight* across the window (begun before, landing mid-collect) can
/// tear the view without moving a completion-only counter. See
/// [`WriteSummary`] for the counting argument.
///
/// The loop is obstruction-free in general and terminates whenever only
/// finitely many writes interfere — which Algorithm 4 guarantees, since
/// each `getTS` writes fewer than `m` times (Lemma 6.14).
///
/// # Example
///
/// ```
/// use ts_register::RegisterArray;
/// use ts_snapshot::double_collect_scan;
///
/// let array: RegisterArray<i32> = RegisterArray::new(2, -1);
/// let view = double_collect_scan(&array);
/// assert_eq!(view.values(), vec![-1, -1]);
/// ```
pub fn double_collect_scan<T, B>(array: &RegisterArray<T, B>) -> View<T>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    loop {
        let before = array.summary();
        let view = collect_view(array);
        if WriteSummary::no_writes_during(before, array.summary()) {
            return view; // rung 1: quiescent window
        }
        if array.collect_stamps() == view.stamps() {
            return view; // rung 2: classic double collect, stamp sweep
        }
    }
}

/// Like [`double_collect_scan`], but gives up after `max_collects`
/// register sweeps (value and stamp sweeps both count — each reads
/// every register once).
///
/// Useful when the bounded-interference argument does not apply (e.g.
/// scanning an array written by an unbounded workload).
///
/// # Errors
///
/// Returns [`ScanInterrupted`] if no sweep validated within the budget.
///
/// # Panics
///
/// Panics if `max_collects < 2` (the stamp-validation rung needs two
/// sweeps; the summary rung can succeed after one, but a budget below
/// two could not guarantee *any* validation under interference).
pub fn try_scan<T, B>(
    array: &RegisterArray<T, B>,
    max_collects: usize,
) -> Result<View<T>, ScanInterrupted>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    assert!(
        max_collects >= 2,
        "a double collect needs at least 2 sweeps"
    );
    let mut done = 0usize;
    while done < max_collects {
        let before = array.summary();
        let view = collect_view(array);
        done += 1;
        if WriteSummary::no_writes_during(before, array.summary()) {
            return Ok(view);
        }
        if done >= max_collects {
            break;
        }
        done += 1;
        if array.collect_stamps() == view.stamps() {
            return Ok(view);
        }
    }
    Err(ScanInterrupted {
        collects: max_collects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use ts_register::SpaceMeter;

    #[test]
    fn quiescent_scan_returns_current_values() {
        let array: RegisterArray<u64> = RegisterArray::new(3, 0);
        array.write(0, 1).unwrap();
        array.write(2, 3).unwrap();
        let view = double_collect_scan(&array);
        assert_eq!(view.values(), vec![1, 0, 3]);
    }

    #[test]
    fn quiescent_scan_short_circuits_to_one_collect() {
        // The summary rung must validate the first sweep: a metered
        // quiescent array records exactly `capacity` reads per scan,
        // not the 2×capacity of an unconditional double collect.
        let meter = SpaceMeter::new(4);
        let array = RegisterArray::with_meter(4, 0u64, meter.clone());
        array.write(1, 9).unwrap();
        let reads_before = meter.snapshot().total_reads();
        let view = double_collect_scan(&array);
        assert_eq!(view.values(), vec![0, 9, 0, 0]);
        assert_eq!(
            meter.snapshot().total_reads() - reads_before,
            4,
            "quiescent scan must validate with the summary word, not a second sweep"
        );
    }

    #[test]
    fn try_scan_succeeds_when_quiescent() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let view = try_scan(&array, 2).unwrap();
        assert_eq!(view.values(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least 2 sweeps")]
    fn try_scan_rejects_budget_below_two() {
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let _ = try_scan(&array, 1);
    }

    #[test]
    fn scan_never_returns_a_torn_view_under_concurrent_writes() {
        // A writer maintains the invariant reg[0] == reg[1] at quiescent
        // points by writing (k, k) pairs register-by-register; the scan
        // must only ever return views where both were written by the same
        // round (values equal) or a prefix thereof. Because each round
        // writes register 0 then register 1 with the same value, any
        // validated view must have been simultaneously present:
        // view[0] >= view[1] and view[0] - view[1] <= 1.
        let array = Arc::new(RegisterArray::new(2, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn packed_scan_never_returns_a_torn_view_under_concurrent_writes() {
        // Same invariant as above, on the word-inlined backend: the
        // packed per-register stamps must make the double collect exact.
        let array = Arc::new(ts_register::PackedRegisterArray::<u32>::new_packed(2, 0));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u32;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn packed view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn compact_layout_scans_are_equally_exact() {
        // The validation ladder is layout-independent; hammer the
        // compact (unpadded) layout the same way.
        let array = Arc::new(RegisterArray::<u64>::with_layout(
            2,
            0,
            ts_register::ArrayLayout::Compact,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn compact view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn interrupted_scan_reports_budget() {
        // Heavy writer keeps flipping a register; with a tiny budget the
        // scan may or may not fail, so drive it deterministically by
        // writing between the collects is not possible from outside —
        // instead just check the error type formatting.
        let err = ScanInterrupted { collects: 7 };
        assert!(err.to_string().contains("7 collects"));
    }
}
