//! The double-collect scan of Afek et al. (1993).

use std::error::Error;
use std::fmt;

use ts_register::{RegisterArray, RegisterBackend};

use crate::view::View;

/// Error returned by [`try_scan`] when the attempt budget is exhausted
/// before two identical collects were observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanInterrupted {
    /// Number of collects performed before giving up.
    pub collects: usize,
}

impl fmt::Display for ScanInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan interrupted: no successful double collect within {} collects",
            self.collects
        )
    }
}

impl Error for ScanInterrupted {}

fn collect_view<T, B>(array: &RegisterArray<T, B>) -> View<T>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    View::new(array.collect())
}

/// Repeatedly collects `array` until two consecutive collects observe the
/// same writes, and returns that view.
///
/// The view is linearizable: it can be placed at any point between the
/// two identical collects. The loop is obstruction-free in general and
/// terminates whenever only finitely many writes interfere — which
/// Algorithm 4 guarantees, since each `getTS` writes fewer than `m` times
/// (Lemma 6.14).
///
/// Generic over the array's [`RegisterBackend`]: change detection uses
/// per-register stamps, which both the epoch and the packed backend
/// provide (the scan never compares stamps across registers).
///
/// # Example
///
/// ```
/// use ts_register::RegisterArray;
/// use ts_snapshot::double_collect_scan;
///
/// let array: RegisterArray<i32> = RegisterArray::new(2, -1);
/// let view = double_collect_scan(&array);
/// assert_eq!(view.values(), vec![-1, -1]);
/// ```
pub fn double_collect_scan<T, B>(array: &RegisterArray<T, B>) -> View<T>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    let mut previous = collect_view(array);
    loop {
        let current = collect_view(array);
        if current.same_writes(&previous) {
            return current;
        }
        previous = current;
    }
}

/// Like [`double_collect_scan`], but gives up after `max_collects`
/// collects.
///
/// Useful when the bounded-interference argument does not apply (e.g.
/// scanning an array written by an unbounded workload).
///
/// # Errors
///
/// Returns [`ScanInterrupted`] if no two consecutive collects agreed
/// within the budget.
///
/// # Panics
///
/// Panics if `max_collects < 2` (a double collect needs two sweeps).
pub fn try_scan<T, B>(
    array: &RegisterArray<T, B>,
    max_collects: usize,
) -> Result<View<T>, ScanInterrupted>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    assert!(
        max_collects >= 2,
        "a double collect needs at least 2 sweeps"
    );
    let mut previous = collect_view(array);
    for done in 1..max_collects {
        let current = collect_view(array);
        if current.same_writes(&previous) {
            return Ok(current);
        }
        previous = current;
        let _ = done;
    }
    Err(ScanInterrupted {
        collects: max_collects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn quiescent_scan_returns_current_values() {
        let array: RegisterArray<u64> = RegisterArray::new(3, 0);
        array.write(0, 1).unwrap();
        array.write(2, 3).unwrap();
        let view = double_collect_scan(&array);
        assert_eq!(view.values(), vec![1, 0, 3]);
    }

    #[test]
    fn try_scan_succeeds_when_quiescent() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let view = try_scan(&array, 2).unwrap();
        assert_eq!(view.values(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least 2 sweeps")]
    fn try_scan_rejects_budget_below_two() {
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let _ = try_scan(&array, 1);
    }

    #[test]
    fn scan_never_returns_a_torn_view_under_concurrent_writes() {
        // A writer maintains the invariant reg[0] == reg[1] at quiescent
        // points by writing (k, k) pairs register-by-register; the scan
        // must only ever return views where both were written by the same
        // round (values equal) or a prefix thereof. Because each round
        // writes register 0 then register 1 with the same value, any
        // successful double collect sees either (k, k) or (k+1, k).
        // The *linearizable* guarantee we check: the view's values were
        // simultaneously present. With this write pattern that means
        // view[0] >= view[1] and view[0] - view[1] <= 1.
        let array = Arc::new(RegisterArray::new(2, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn packed_scan_never_returns_a_torn_view_under_concurrent_writes() {
        // Same invariant as above, on the word-inlined backend: the
        // packed per-register stamps must make the double collect exact.
        let array = Arc::new(ts_register::PackedRegisterArray::<u32>::new_packed(2, 0));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u32;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn packed view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn interrupted_scan_reports_budget() {
        // Heavy writer keeps flipping a register; with a tiny budget the
        // scan may or may not fail, so drive it deterministically by
        // writing between the collects is not possible from outside —
        // instead just check the error type formatting.
        let err = ScanInterrupted { collects: 7 };
        assert!(err.to_string().contains("7 collects"));
    }
}
