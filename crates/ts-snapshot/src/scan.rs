//! The double-collect scan of Afek et al. (1993), with a
//! summary-validated fast path and dirty-block adaptive retries.

use std::error::Error;
use std::fmt;

use ts_register::{RegisterArray, RegisterBackend, Stamped, WriteSummary};

use crate::view::View;

/// Error returned by [`try_scan`] when the attempt budget is exhausted
/// before a validated view was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanInterrupted {
    /// Number of collects performed before giving up.
    pub collects: usize,
}

impl fmt::Display for ScanInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan interrupted: no successful double collect within {} collects",
            self.collects
        )
    }
}

impl Error for ScanInterrupted {}

/// How a scan call resolved: which ladder rungs it climbed and, for
/// [`helping_scan`](crate::helping_scan), whether it adopted a helped
/// view instead of validating its own.
///
/// These are the per-call inputs to the `dirty_recollects` /
/// `helped_scans` counters of `ts-core`'s `ServiceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Dirty-block retry passes performed (0 = the first collect
    /// validated, via the summary short-circuit or clean block words).
    pub recollect_passes: u64,
    /// Registers re-read and patched across all retry passes — the
    /// O(dirty) work a full-recollect loop would have multiplied by
    /// the array capacity.
    pub patched_registers: u64,
    /// The view was adopted from a helper's published record rather
    /// than validated directly (only `helping_scan` sets this).
    pub helped: bool,
}

/// The adaptive scan engine: one initial collect, then dirty-block
/// retry passes that re-read only registers whose block words moved.
///
/// Shared by [`double_collect_scan`], [`try_scan`] and the helping
/// scan (`crate::help`), which interleaves board polls between passes.
///
/// # The ladder, and why each rung is linearizable
///
/// **Rung 1 (quiescent short-circuit).** The initial collect is
/// bracketed by reads of the global write-summary word; if
/// [`WriteSummary::no_writes_during`] holds, the array was quiescent
/// for the whole window and the collect is returned after one value
/// sweep and two one-word loads.
///
/// **Rung 2 (dirty-block passes).** Otherwise the scanner keeps, per
/// block of [`BLOCK_REGISTERS`](ts_register::BLOCK_REGISTERS)
/// registers, the block dirty word it read *before* the collect, and
/// re-reads all block words after it. Blocks whose word pair fails
/// `no_writes_during` are *flagged*; each retry pass re-reads only the
/// stamps of registers in flagged blocks, patching entries whose stamp
/// moved, then re-reads the block words to compute the next flag set.
/// The pass windows tile: each pass reuses the previous pass's block
/// readings as its starting bracket, so no store can fall between
/// windows undetected.
///
/// The scan returns when a pass patches nothing (every flagged
/// block's registers re-confirmed their stamps) or when the fresh
/// flag set is empty (no store overlapped the window containing the
/// patches). In both cases every entry was simultaneously current at
/// a point inside the last window: unflagged blocks had no store
/// bracketing it (their words certify quiescence across the window),
/// and flagged blocks' entries are pinned by stamp equality spanning
/// it — stamps change on every store on both backends, so an equal
/// stamp pair certifies the value did not move in between. This is
/// Afek et al.'s double-collect criterion applied per block, with the
/// block words selecting which registers still need the stamp sweep.
pub(crate) struct AdaptiveScanner<'a, T, B: RegisterBackend<T>> {
    array: &'a RegisterArray<T, B>,
    entries: Vec<Stamped<T>>,
    /// Last block-word readings (the opening bracket of the next
    /// window).
    window: Vec<WriteSummary>,
    /// Blocks whose word moved across the previous window.
    flagged: Vec<usize>,
    /// Retry passes performed.
    pub passes: u64,
    /// Registers patched across all passes.
    pub patched: u64,
    validated: bool,
}

impl<'a, T, B> AdaptiveScanner<'a, T, B>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    /// Performs the initial collect (one register sweep) and the rung-1
    /// validation; check [`is_validated`](Self::is_validated) before
    /// stepping.
    pub fn new(array: &'a RegisterArray<T, B>) -> Self {
        let before_global = array.summary();
        let before_blocks = array.block_summaries();
        let entries = array.collect();
        let mut scanner = Self {
            array,
            entries,
            window: Vec::new(),
            flagged: Vec::new(),
            passes: 0,
            patched: 0,
            validated: false,
        };
        if WriteSummary::no_writes_during(before_global, array.summary()) {
            scanner.validated = true; // rung 1: quiescent window
            return scanner;
        }
        scanner.window = scanner.array.block_summaries();
        scanner.flagged = dirty_blocks(&before_blocks, &scanner.window);
        // The global word saw traffic but every block window was
        // clean: the interfering stores fell outside the (slightly
        // narrower) block windows bracketing the collect.
        scanner.validated = scanner.flagged.is_empty();
        scanner
    }

    /// Whether the current entries form a validated (linearizable)
    /// view.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Runs one dirty-block retry pass (one partial register sweep):
    /// re-reads stamps in flagged blocks, patches moved entries, then
    /// advances the block-word window.
    ///
    /// # Panics
    ///
    /// Panics if the scan already validated (callers must check
    /// [`is_validated`](Self::is_validated)).
    pub fn step_pass(&mut self) {
        assert!(!self.validated, "scan already validated");
        self.passes += 1;
        let mut patched_now = 0u64;
        for &block in &self.flagged {
            for reg in self.array.block_range(block) {
                let stamp = self.array.stamp(reg).expect("index in range");
                if stamp != self.entries[reg].stamp {
                    self.entries[reg] = self.array.read_stamped(reg).expect("index in range");
                    patched_now += 1;
                }
            }
        }
        self.patched += patched_now;
        if patched_now == 0 {
            // Every flagged block re-confirmed its stamps across the
            // window boundary; unflagged blocks were quiescent.
            self.validated = true;
            return;
        }
        let next = self.array.block_summaries();
        self.flagged = dirty_blocks(&self.window, &next);
        self.window = next;
        // No store overlapped the window the patches were read in.
        self.validated = self.flagged.is_empty();
    }

    /// Consumes the scanner, returning the validated view.
    ///
    /// # Panics
    ///
    /// Panics if the scan has not validated.
    pub fn into_view(self) -> View<T> {
        assert!(self.validated, "scan has not validated");
        View::new(self.entries)
    }
}

fn dirty_blocks(before: &[WriteSummary], after: &[WriteSummary]) -> Vec<usize> {
    before
        .iter()
        .zip(after)
        .enumerate()
        .filter(|(_, (b, a))| !WriteSummary::no_writes_during(**b, **a))
        .map(|(i, _)| i)
        .collect()
}

/// Repeatedly collects `array` until a collect is validated, and returns
/// that view.
///
/// # Validation ladder
///
/// Each round climbs as little of this ladder as contention forces:
///
/// 1. **Summary short-circuit** — read the array's write-summary word,
///    collect once, re-read the summary. If
///    [`WriteSummary::no_writes_during`] holds, no register store
///    executed anywhere in the window: the collect read a quiescent
///    array and is returned after *one* value sweep and two one-word
///    loads. This is the common case for quiescent and low-contention
///    arrays (and on oversubscribed hosts, where interfering writers
///    are mostly descheduled).
/// 2. **Dirty-block recollect** — otherwise, compare the per-block
///    dirty words read before and after the collect and re-read only
///    the *stamps* of registers in blocks that moved, patching entries
///    whose stamp changed. Each retry pass costs O(blocks) one-word
///    loads plus O(registers in dirty blocks) stamp reads — not the
///    O(capacity) full sweep of the classic recollect loop — and the
///    pass windows tile, so no store escapes detection. A pass that
///    patches nothing (or whose fresh dirty set is empty) validates
///    the view; see `AdaptiveScanner` (in this module's source) for
///    the rung-by-rung linearizability argument.
///
/// Stamp equality is the classic double-collect success criterion of
/// Afek et al., applied per register: an equal stamp pair brackets a
/// window in which that register was not written, so the captured
/// value was simultaneously present with every other confirmed entry.
///
/// The loop is lock-free but not wait-free: a flood of writers can
/// starve one scanner indefinitely (each pass is cheap, but passes may
/// never stop failing). [`helping_scan`](crate::helping_scan) bounds
/// that starvation. The loop terminates whenever only finitely many
/// writes interfere — which Algorithm 4 guarantees, since each `getTS`
/// writes fewer than `m` times (Lemma 6.14).
///
/// # Example
///
/// ```
/// use ts_register::RegisterArray;
/// use ts_snapshot::double_collect_scan;
///
/// let array: RegisterArray<i32> = RegisterArray::new(2, -1);
/// let view = double_collect_scan(&array);
/// assert_eq!(view.values(), vec![-1, -1]);
/// ```
pub fn double_collect_scan<T, B>(array: &RegisterArray<T, B>) -> View<T>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    adaptive_scan(array).0
}

/// [`double_collect_scan`] with the per-call [`ScanOutcome`] exposed:
/// how many dirty-block retry passes ran and how many registers they
/// patched. Zero passes means the first collect validated.
pub fn adaptive_scan<T, B>(array: &RegisterArray<T, B>) -> (View<T>, ScanOutcome)
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    let mut scanner = AdaptiveScanner::new(array);
    while !scanner.is_validated() {
        scanner.step_pass();
    }
    let outcome = ScanOutcome {
        recollect_passes: scanner.passes,
        patched_registers: scanner.patched,
        helped: false,
    };
    (scanner.into_view(), outcome)
}

/// The textbook double collect of Afek et al., with none of the
/// adaptive ladder: full-array stamped sweeps repeated until two
/// consecutive sweeps agree on every register's stamp.
///
/// This is the **baseline** the adaptive ladder is measured against in
/// `ts-bench`'s writer-storm cells — every retry re-reads all
/// `capacity` registers, where [`adaptive_scan`] re-reads only the
/// registers of blocks whose dirty word moved. Correctness is the
/// classic criterion: stamp equality across consecutive sweeps brackets
/// a window in which no register was written, so the second sweep's
/// values were simultaneously present. Lock-free, not wait-free; use
/// [`helping_scan`](crate::helping_scan) for the bounded version.
///
/// The outcome's `recollect_passes` counts sweeps beyond the mandatory
/// two, and `patched_registers` the stamp mismatches that forced them
/// (so the row is comparable with the adaptive outcome's fields).
pub fn classic_double_collect_scan<T, B>(array: &RegisterArray<T, B>) -> (View<T>, ScanOutcome)
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    let mut outcome = ScanOutcome::default();
    let mut prev = array.collect();
    loop {
        let next = array.collect();
        let moved = prev
            .iter()
            .zip(&next)
            .filter(|(a, b)| a.stamp != b.stamp)
            .count() as u64;
        if moved == 0 {
            return (View::new(next), outcome);
        }
        outcome.recollect_passes += 1;
        outcome.patched_registers += moved;
        prev = next;
    }
}

/// Like [`double_collect_scan`], but gives up after `max_collects`
/// register sweeps (the initial value sweep and each dirty-block retry
/// pass count as one sweep each).
///
/// Useful when the bounded-interference argument does not apply (e.g.
/// scanning an array written by an unbounded workload) and no help
/// board is wired up.
///
/// # Errors
///
/// Returns [`ScanInterrupted`] if no sweep validated within the budget.
///
/// # Panics
///
/// Panics if `max_collects < 2` (the stamp-validation rung needs two
/// sweeps; the summary rung can succeed after one, but a budget below
/// two could not guarantee *any* validation under interference).
pub fn try_scan<T, B>(
    array: &RegisterArray<T, B>,
    max_collects: usize,
) -> Result<View<T>, ScanInterrupted>
where
    T: Clone + Send + Sync,
    B: RegisterBackend<T>,
{
    assert!(
        max_collects >= 2,
        "a double collect needs at least 2 sweeps"
    );
    let mut scanner = AdaptiveScanner::new(array);
    let mut done = 1usize; // the initial collect
    while !scanner.is_validated() {
        if done >= max_collects {
            return Err(ScanInterrupted {
                collects: max_collects,
            });
        }
        scanner.step_pass();
        done += 1;
    }
    Ok(scanner.into_view())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use ts_register::SpaceMeter;

    #[test]
    fn quiescent_scan_returns_current_values() {
        let array: RegisterArray<u64> = RegisterArray::new(3, 0);
        array.write(0, 1).unwrap();
        array.write(2, 3).unwrap();
        let view = double_collect_scan(&array);
        assert_eq!(view.values(), vec![1, 0, 3]);
    }

    #[test]
    fn quiescent_scan_short_circuits_to_one_collect() {
        // The summary rung must validate the first sweep: a metered
        // quiescent array records exactly `capacity` reads per scan,
        // not the 2×capacity of an unconditional double collect.
        let meter = SpaceMeter::new(4);
        let array = RegisterArray::with_meter(4, 0u64, meter.clone());
        array.write(1, 9).unwrap();
        let reads_before = meter.snapshot().total_reads();
        let (view, outcome) = adaptive_scan(&array);
        assert_eq!(view.values(), vec![0, 9, 0, 0]);
        assert_eq!(
            meter.snapshot().total_reads() - reads_before,
            4,
            "quiescent scan must validate with the summary word, not a second sweep"
        );
        assert_eq!(outcome.recollect_passes, 0);
        assert_eq!(outcome.patched_registers, 0);
        assert!(!outcome.helped);
    }

    #[test]
    fn try_scan_succeeds_when_quiescent() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let view = try_scan(&array, 2).unwrap();
        assert_eq!(view.values(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least 2 sweeps")]
    fn try_scan_rejects_budget_below_two() {
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let _ = try_scan(&array, 1);
    }

    #[test]
    fn quiescent_scanner_validates_on_construction() {
        let meter = SpaceMeter::new(3);
        let array = RegisterArray::with_meter(3, 0u64, meter.clone());
        array.write(2, 7).unwrap();
        let before = meter.snapshot().total_reads();
        let scanner = AdaptiveScanner::new(&array);
        assert!(scanner.is_validated(), "quiescent first collect validates");
        assert_eq!(scanner.entries[2].value, 7);
        assert_eq!(scanner.passes, 0);
        let used = meter.snapshot().total_reads() - before;
        assert_eq!(used, 3, "one sweep for the quiescent collect");
        assert_eq!(scanner.into_view().values(), vec![0, 0, 7]);
    }

    #[test]
    fn classic_scan_matches_quiescent_values_and_counts_sweeps() {
        let array: RegisterArray<u64> = RegisterArray::new(3, 0);
        array.write(1, 6).unwrap();
        let (view, outcome) = classic_double_collect_scan(&array);
        assert_eq!(view.values(), vec![0, 6, 0]);
        assert_eq!(outcome.recollect_passes, 0);
        assert_eq!(outcome.patched_registers, 0);
    }

    #[test]
    fn classic_scan_never_returns_a_torn_view() {
        // Same pair invariant as the adaptive stress below, on the
        // baseline path: classic validation must be equally exact.
        let array = Arc::new(RegisterArray::new(2, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let (view, _) = classic_double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn classic view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn scan_never_returns_a_torn_view_under_concurrent_writes() {
        // A writer maintains the invariant reg[0] == reg[1] at quiescent
        // points by writing (k, k) pairs register-by-register; the scan
        // must only ever return views where both were written by the same
        // round (values equal) or a prefix thereof. Because each round
        // writes register 0 then register 1 with the same value, any
        // validated view must have been simultaneously present:
        // view[0] >= view[1] and view[0] - view[1] <= 1.
        let array = Arc::new(RegisterArray::new(2, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn packed_scan_never_returns_a_torn_view_under_concurrent_writes() {
        // Same invariant as above, on the word-inlined backend: the
        // packed per-register stamps must make the double collect exact.
        let array = Arc::new(ts_register::PackedRegisterArray::<u32>::new_packed(2, 0));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u32;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn packed view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn compact_layout_scans_are_equally_exact() {
        // The validation ladder is layout-independent; hammer the
        // compact (unpadded) layout the same way.
        let array = Arc::new(RegisterArray::<u64>::with_layout(
            2,
            0,
            ts_register::ArrayLayout::Compact,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(0, k).unwrap();
                    writer_array.write(1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..200 {
                let view = double_collect_scan(&array);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn compact view: {v:?} cannot have been simultaneous"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn multi_block_scan_stays_exact_across_the_block_boundary() {
        // Paired registers straddling the 64-register block boundary:
        // writes dirty two different blocks, and the scan must still
        // never tear the pair.
        let array = Arc::new(RegisterArray::<u64>::new(65, 0));
        let stop = Arc::new(AtomicBool::new(false));
        crossbeam::scope(|s| {
            let writer_array = Arc::clone(&array);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    writer_array.write(63, k).unwrap();
                    writer_array.write(64, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..100 {
                let (view, _) = adaptive_scan(&array);
                let v = view.values();
                assert!(
                    v[63] >= v[64] && v[63] - v[64] <= 1,
                    "torn cross-block view: ({}, {}) cannot have been simultaneous",
                    v[63],
                    v[64]
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }

    #[test]
    fn interrupted_scan_reports_budget() {
        // Heavy writer keeps flipping a register; with a tiny budget the
        // scan may or may not fail, so drive it deterministically by
        // writing between the collects is not possible from outside —
        // instead just check the error type formatting.
        let err = ScanInterrupted { collects: 7 };
        assert!(err.to_string().contains("7 collects"));
    }
}
