//! Collect, double-collect scan, and wait-free atomic snapshot.
//!
//! Algorithm 4 of Helmi et al. (PODC 2011) performs a `scan` of its
//! register array (line 13) using the obstruction-free double-collect of
//! Afek, Attiya, Dolev, Gafni, Merritt and Shavit (JACM 1993): repeatedly
//! read all registers until two consecutive sweeps observe identical
//! contents, at which point the sweep is a linearizable view. The paper
//! notes that this scan is wait-free *in the context of Algorithm 4*
//! because every `getTS` performs fewer than `m` writes, so the total
//! number of interfering writes is finite.
//!
//! This crate provides:
//!
//! - [`double_collect_scan`] / [`try_scan`] / [`adaptive_scan`] — the
//!   scan used by Algorithm 4, operating on a
//!   [`ts_register::RegisterArray`] of either register backend (epoch
//!   heap cells or word-inlined packed registers), with dirty-block
//!   adaptive retries (O(dirty) per retry instead of O(n));
//! - [`helping_scan`] / [`helping_write`] / [`HelpBoard`] — the
//!   wait-free upgrade: writers under distress publish era-tagged
//!   views a starved scanner adopts, bounding scan retries by a
//!   tunable [`ScanPolicy::starvation_bound`];
//! - [`WaitFreeSnapshot`] — the full single-writer atomic snapshot object
//!   of Afek et al., wait-free unconditionally thanks to embedded views.
//!
//! # Example
//!
//! ```
//! use ts_register::RegisterArray;
//! use ts_snapshot::double_collect_scan;
//!
//! let array: RegisterArray<u64> = RegisterArray::new(4, 0);
//! array.write(2, 9).unwrap();
//! let view = double_collect_scan(&array);
//! assert_eq!(view.values()[2], 9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod help;
mod scan;
mod snapshot;
mod view;

pub use help::{
    helping_scan, helping_scan_paused, helping_write, storm_write_paused, HelpBoard, ScanPolicy,
    WriteOutcome,
};
pub use scan::{
    adaptive_scan, classic_double_collect_scan, double_collect_scan, try_scan, ScanInterrupted,
    ScanOutcome,
};
pub use snapshot::{Updater, WaitFreeSnapshot};
pub use view::View;
