//! Wait-free helping for the adaptive scan: era-tagged help records
//! published by writers, adopted by starved scanners.
//!
//! The dirty-block ladder of [`double_collect_scan`](crate::double_collect_scan)
//! makes each retry cheap (O(dirty) instead of O(n)) but not *bounded*:
//! a writer storm can keep failing a scanner's validation forever. This
//! module adds the classic Afek-et-al.-style helping construction on
//! top of the ladder, adapted to multi-writer register arrays:
//!
//! - A scanner that fails `starvation_bound` retry passes raises a
//!   **distress** flag on the shared [`HelpBoard`] and keeps retrying,
//!   now polling the board between passes.
//! - A writer calling [`helping_write`] while distress is raised first
//!   runs its own adaptive scan, **publishes** the resulting view to
//!   its board slot tagged with the *era* it read before scanning, and
//!   only then performs its store.
//! - The starved scanner **adopts** any published record whose era tag
//!   is at least the era it announced at scan start — such a record's
//!   view was collected entirely inside the scanner's interval, so
//!   returning it is linearizable.
//!
//! # Linearizability of adoption
//!
//! Every scan announces itself by bumping the board's era counter
//! (scanners) or reading it (helpers) *before* its first collect, and
//! every published record carries the era its producing scan read at
//! start — a helper that itself adopted re-publishes the **original**
//! tag, never its own era, so a tag `t` always certifies "this view's
//! linearization point lies after the era counter first reached `t`".
//! A scanner that bumped the era to `e₀` therefore knows any record
//! tagged `≥ e₀` linearized after its own scan began; the record was
//! read before the scan returns, so the adopted view linearizes inside
//! the scanner's interval. (Adopting by publication *time* alone would
//! be unsound: a record published after the scan began may hold a view
//! collected long before it.)
//!
//! # The starvation bound
//!
//! Once a scanner's distress is visible, every writer performs at most
//! one more store before its next [`helping_write`] observes distress
//! and publishes a qualifying record ahead of its store (its era read
//! follows the scanner's bump, so its tag qualifies — and if it
//! adopted, the preserved tag still qualifies, because the record it
//! adopted from was itself produced under distress). Each failed retry
//! pass consumes at least one interfering store, so with `w` writers
//! the scanner validates or adopts within `starvation_bound + w + 1`
//! passes of raising distress: `scan` is wait-free provided all
//! writers route their stores through `helping_write`. Writers are
//! wait-free too — a helper's own collect is bounded by the same
//! pigeonhole (any writer interfering twice with it published a
//! qualifying record in between), and a helper abandons helping as
//! soon as distress clears.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ts_register::{CachePadded, CapacityError, RegisterArray, RegisterBackend, StampedRegister};

use crate::scan::{AdaptiveScanner, ScanOutcome};
use crate::view::View;

/// Tuning knobs for [`helping_scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPolicy {
    /// Failed dirty-block retry passes a scanner tolerates before
    /// raising distress on the help board. Lower bounds the scanner's
    /// latency under storm (it adopts sooner); higher keeps writers on
    /// their fast path longer (they only help while distress is up).
    pub starvation_bound: u32,
}

impl Default for ScanPolicy {
    fn default() -> Self {
        Self {
            starvation_bound: 4,
        }
    }
}

/// One era-tagged published view (see the module docs for the tag
/// invariant).
struct HelpRecord<T> {
    era_tag: u64,
    view: Arc<View<T>>,
}

impl<T> Clone for HelpRecord<T> {
    fn clone(&self) -> Self {
        Self {
            era_tag: self.era_tag,
            view: Arc::clone(&self.view),
        }
    }
}

/// The shared helping substrate beside a [`RegisterArray`]: the era
/// counter, the distress gauge, and one era-tagged record slot per
/// writer (single-writer, epoch-reclaimed [`StampedRegister`]s — the
/// record's sequence stamp is the register's write stamp).
///
/// One board serves one array; writers are identified by a dense index
/// `0..writers` (their board slot), independent of which array
/// register they store to.
pub struct HelpBoard<T> {
    era: CachePadded<AtomicU64>,
    distress: CachePadded<AtomicU64>,
    slots: Vec<CachePadded<StampedRegister<Option<HelpRecord<T>>>>>,
}

impl<T: Clone + Send + Sync + 'static> HelpBoard<T> {
    /// Creates a board with one publication slot per writer.
    pub fn new(writers: usize) -> Self {
        Self {
            era: CachePadded::new(AtomicU64::new(0)),
            distress: CachePadded::new(AtomicU64::new(0)),
            slots: (0..writers)
                .map(|_| CachePadded::new(StampedRegister::new(None)))
                .collect(),
        }
    }

    /// Number of writer slots.
    pub fn writers(&self) -> usize {
        self.slots.len()
    }

    /// Scanners currently starved past their policy bound (writers
    /// help while this is non-zero).
    pub fn distress_level(&self) -> u64 {
        self.distress.load(Ordering::SeqCst)
    }

    /// The current era (diagnostics; bumped once per `helping_scan`).
    pub fn era(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Returns a published record with `era_tag >= min_era`, if any
    /// slot holds one.
    fn adopt(&self, min_era: u64) -> Option<(u64, Arc<View<T>>)> {
        self.slots.iter().find_map(|slot| {
            slot.read_with(|record| {
                record
                    .as_ref()
                    .filter(|r| r.era_tag >= min_era)
                    .map(|r| (r.era_tag, Arc::clone(&r.view)))
            })
        })
    }

    fn publish(&self, writer: usize, era_tag: u64, view: Arc<View<T>>) {
        self.slots[writer].write(Some(HelpRecord { era_tag, view }));
    }
}

impl<T> fmt::Debug for HelpBoard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HelpBoard")
            .field("writers", &self.slots.len())
            .field("era", &self.era.load(Ordering::Relaxed))
            .field("distress", &self.distress.load(Ordering::Relaxed))
            .finish()
    }
}

/// Wait-free adaptive scan: the dirty-block ladder of
/// [`adaptive_scan`](crate::adaptive_scan), plus board-mediated
/// helping once `policy.starvation_bound` retry passes have failed.
///
/// Returns the view and a [`ScanOutcome`] whose `helped` flag reports
/// whether the view was adopted from a writer's published record
/// instead of validated directly. Wait-freedom holds when every store
/// to `array` goes through [`helping_write`] on the same board; stores
/// that bypass the board degrade this to the lock-free guarantee of
/// `adaptive_scan` (they can starve the scanner without ever
/// publishing help).
pub fn helping_scan<T, B>(
    array: &RegisterArray<T, B>,
    board: &HelpBoard<T>,
    policy: &ScanPolicy,
) -> (View<T>, ScanOutcome)
where
    T: Clone + Send + Sync + 'static,
    B: RegisterBackend<T>,
{
    // Announce the scan: records tagged >= e0 were collected after
    // this bump, i.e. inside our interval.
    let e0 = board.era.fetch_add(1, Ordering::SeqCst) + 1;
    let mut scanner = AdaptiveScanner::new(array);
    let mut distressed = false;
    while !scanner.is_validated() {
        if distressed {
            if let Some((_, view)) = board.adopt(e0) {
                board.distress.fetch_sub(1, Ordering::SeqCst);
                let outcome = ScanOutcome {
                    recollect_passes: scanner.passes,
                    patched_registers: scanner.patched,
                    helped: true,
                };
                return ((*view).clone(), outcome);
            }
        } else if scanner.passes >= u64::from(policy.starvation_bound) {
            board.distress.fetch_add(1, Ordering::SeqCst);
            distressed = true;
            continue; // poll once before paying for another pass
        }
        scanner.step_pass();
    }
    if distressed {
        board.distress.fetch_sub(1, Ordering::SeqCst);
    }
    let outcome = ScanOutcome {
        recollect_passes: scanner.passes,
        patched_registers: scanner.patched,
        helped: false,
    };
    (scanner.into_view(), outcome)
}

/// What a [`helping_write`] did besides its store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// A help record was published ahead of the store (distress was
    /// raised and the helper's collect completed or adopted).
    pub published_help: bool,
    /// Dirty-block retry passes the helper's own collect performed.
    pub recollect_passes: u64,
}

/// Stores `value` into `array[index]`, first publishing help if any
/// scanner is in distress: the writer runs its own adaptive collect
/// (adopting from the board if it is itself interfered with), writes
/// the era-tagged view into its board `slot`, and only then performs
/// the store — so the store can never starve a scanner without having
/// handed it a qualifying view first.
///
/// `slot` identifies the writer on the board (`0..board.writers()`);
/// `index` is the array register being written, as in
/// [`RegisterArray::write`].
///
/// # Errors
///
/// Returns [`CapacityError`] if `index` is out of range (the help
/// publication is skipped in that case too).
///
/// # Panics
///
/// Panics if `slot >= board.writers()`.
pub fn helping_write<T, B>(
    array: &RegisterArray<T, B>,
    board: &HelpBoard<T>,
    slot: usize,
    index: usize,
    value: T,
) -> Result<WriteOutcome, CapacityError>
where
    T: Clone + Send + Sync + 'static,
    B: RegisterBackend<T>,
{
    assert!(slot < board.writers(), "writer slot {slot} out of range");
    if index >= array.capacity() {
        // Surface the same error write() would, without publishing.
        return array.write(index, value).map(|_| WriteOutcome::default());
    }
    let mut outcome = WriteOutcome::default();
    if board.distress_level() > 0 {
        // Tag with the era read *before* collecting: the view below is
        // collected entirely after this read, so the tag certifies the
        // module-level invariant.
        let era = board.era.load(Ordering::SeqCst);
        let mut scanner = AdaptiveScanner::new(array);
        loop {
            if scanner.is_validated() {
                outcome.recollect_passes = scanner.passes;
                board.publish(slot, era, Arc::new(scanner.into_view()));
                outcome.published_help = true;
                break;
            }
            if board.distress_level() == 0 {
                // Every starved scanner finished; abandon the help
                // (publishing a half-validated view would be unsound,
                // and nobody is waiting).
                outcome.recollect_passes = scanner.passes;
                break;
            }
            if let Some((tag, view)) = board.adopt(era) {
                // Preserve the adopted record's tag — re-tagging with
                // our own era would claim a freshness the view does
                // not have (see the module docs).
                outcome.recollect_passes = scanner.passes;
                board.publish(slot, tag, view);
                outcome.published_help = true;
                break;
            }
            scanner.step_pass();
        }
    }
    array.write(index, value)?;
    Ok(outcome)
}

/// Replay-gated rendition of [`helping_scan`], announcing one `pause`
/// immediately before every shared-memory access, in the exact order of
/// `ts_core::model::HelpingScanMachine` (the model twin): era read, era
/// bump CAS, one read per register for the opening collect, then
/// full-array validate sweeps (the model has one register per dirty
/// block, so a validate pass is a full sweep, not a dirty-block one)
/// with board polls — one read per slot, ascending — between failed
/// sweeps once distress is up.
///
/// Two deliberate divergences from [`helping_scan`], both mirroring the
/// model so a recorded schedule drives the same access sequence:
///
/// - **Sticky distress**: raised with a plain store of 1 and never
///   decremented. A decrement after adoption would be an unannounced
///   access that can flip a concurrent writer's path choice mid-replay.
/// - **Effective bound `>= 1`**: distress can only be raised *after* a
///   failed validate sweep (the model's `RaiseDistress` follows a
///   patched `Validate`), so a `starvation_bound` of 0 behaves as 1.
///
/// The outcome's `recollect_passes` counts failed validate sweeps (0 =
/// the first double collect validated), matching the retry semantics of
/// the unpaused ladder.
pub fn helping_scan_paused<T, B>(
    array: &RegisterArray<T, B>,
    board: &HelpBoard<T>,
    policy: &ScanPolicy,
    mut pause: impl FnMut(),
) -> (View<T>, ScanOutcome)
where
    T: Clone + Send + Sync + 'static,
    B: RegisterBackend<T>,
{
    let n = array.capacity();
    pause(); // era read
    let mut e = board.era.load(Ordering::SeqCst);
    let e0 = loop {
        pause(); // era bump CAS (one announced access per attempt)
        match board
            .era
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => break e + 1,
            Err(prior) => e = prior,
        }
    };
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        pause(); // opening collect, one read per register
        entries.push(array.read_stamped(i).expect("index in range"));
    }
    let bound = u64::from(policy.starvation_bound.max(1));
    let mut failed = 0u64;
    let mut patched_total = 0u64;
    let mut distressed = false;
    loop {
        // Validate sweep: re-read every register, patch moved stamps.
        let mut patched_now = 0u64;
        for (i, entry) in entries.iter_mut().enumerate() {
            pause(); // validate read
            let fresh = array.read_stamped(i).expect("index in range");
            if fresh.stamp != entry.stamp {
                *entry = fresh;
                patched_now += 1;
            }
        }
        if patched_now == 0 {
            let outcome = ScanOutcome {
                recollect_passes: failed,
                patched_registers: patched_total,
                helped: false,
            };
            return (View::new(entries), outcome);
        }
        failed += 1;
        patched_total += patched_now;
        if !distressed && failed >= bound {
            pause(); // distress store (sticky; see the doc comment)
            board.distress.store(1, Ordering::SeqCst);
            distressed = true;
        }
        if distressed {
            for slot in &board.slots {
                pause(); // board poll, one read per slot, ascending
                let adopted = slot.read_with(|record| {
                    record
                        .as_ref()
                        .filter(|r| r.era_tag >= e0)
                        .map(|r| Arc::clone(&r.view))
                });
                if let Some(view) = adopted {
                    let outcome = ScanOutcome {
                        recollect_passes: failed,
                        patched_registers: patched_total,
                        helped: true,
                    };
                    return ((*view).clone(), outcome);
                }
            }
        }
    }
}

/// Replay-gated rendition of a storming collect-max writer routed
/// through the help board: the writer's op is a `getTS`-style collect
/// (`max + 1`) stored into `array[index]`, helping first when distress
/// is up — the model twin's writer, announced one `pause` per
/// shared-memory access.
///
/// Calm path (distress read as 0): one value read per register, then
/// the store. Helping path: era read, stamped collect, full-array
/// validate sweeps **looped until clean** (the model's helper neither
/// adopts nor abandons — abandoning would hinge on an unannounced
/// distress re-read), publish the era-tagged view on the own board
/// slot, then the store. Returns the stored timestamp and the
/// [`WriteOutcome`], whose `recollect_passes` counts failed validate
/// sweeps.
///
/// # Panics
///
/// Panics if `slot >= board.writers()` or `index >= array.capacity()`
/// (replay workloads always pass in-range indices; a recoverable error
/// path would add unannounced accesses).
pub fn storm_write_paused<B>(
    array: &RegisterArray<u64, B>,
    board: &HelpBoard<u64>,
    slot: usize,
    index: usize,
    mut pause: impl FnMut(),
) -> (u64, WriteOutcome)
where
    B: RegisterBackend<u64>,
{
    assert!(slot < board.writers(), "writer slot {slot} out of range");
    assert!(index < array.capacity(), "register {index} out of range");
    let n = array.capacity();
    let mut outcome = WriteOutcome::default();
    pause(); // distress read picks the path
    let t = if board.distress.load(Ordering::SeqCst) == 0 {
        let mut max = 0u64;
        for i in 0..n {
            pause(); // calm collect, one value read per register
            max = max.max(array.read(i).expect("index in range"));
        }
        max + 1
    } else {
        pause(); // era read *before* the collect (the tag invariant)
        let tag = board.era.load(Ordering::SeqCst);
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            pause(); // helping collect, one stamped read per register
            entries.push(array.read_stamped(i).expect("index in range"));
        }
        loop {
            let mut patched = false;
            for (i, entry) in entries.iter_mut().enumerate() {
                pause(); // helping validate read
                let fresh = array.read_stamped(i).expect("index in range");
                if fresh.stamp != entry.stamp {
                    *entry = fresh;
                    patched = true;
                }
            }
            if !patched {
                break;
            }
            outcome.recollect_passes += 1;
        }
        let view = View::new(entries);
        let max = view.values().into_iter().max().unwrap_or(0);
        pause(); // board publish
        board.publish(slot, tag, Arc::new(view));
        outcome.published_help = true;
        max + 1
    };
    pause(); // the store itself
    array.write(index, t).expect("index in range");
    (t, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn uncontended_helping_scan_is_a_plain_scan() {
        let array: RegisterArray<u64> = RegisterArray::new(3, 0);
        let board = HelpBoard::new(2);
        array.write(1, 5).unwrap();
        let (view, outcome) = helping_scan(&array, &board, &ScanPolicy::default());
        assert_eq!(view.values(), vec![0, 5, 0]);
        assert!(!outcome.helped);
        assert_eq!(outcome.recollect_passes, 0);
        assert_eq!(board.distress_level(), 0);
        assert_eq!(board.era(), 1, "every scan announces an era");
    }

    #[test]
    fn helping_write_skips_the_board_when_nobody_is_starving() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let board = HelpBoard::new(1);
        let outcome = helping_write(&array, &board, 0, 1, 42).unwrap();
        assert!(!outcome.published_help);
        assert_eq!(array.read(1).unwrap(), 42);
        assert!(board.adopt(0).is_none(), "no record published");
    }

    #[test]
    fn helping_write_publishes_under_distress() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let board = HelpBoard::new(1);
        board.distress.fetch_add(1, Ordering::SeqCst);
        let outcome = helping_write(&array, &board, 0, 0, 7).unwrap();
        assert!(outcome.published_help);
        let (tag, view) = board.adopt(0).expect("record published");
        assert_eq!(tag, board.era());
        // The published view predates the store that followed it.
        assert_eq!(view.values(), vec![0, 0]);
        board.distress.fetch_sub(1, Ordering::SeqCst);
    }

    #[test]
    fn adoption_requires_a_fresh_era_tag() {
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let board: HelpBoard<u64> = HelpBoard::new(1);
        board.publish(0, 3, Arc::new(View::new(array.collect())));
        assert!(board.adopt(3).is_some());
        assert!(
            board.adopt(4).is_none(),
            "stale records must never be adopted"
        );
    }

    #[test]
    fn out_of_range_helping_write_errors_without_publishing() {
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let board = HelpBoard::new(1);
        board.distress.fetch_add(1, Ordering::SeqCst);
        assert!(helping_write(&array, &board, 0, 5, 1).is_err());
        assert!(board.adopt(0).is_none());
    }

    #[test]
    fn paused_scan_announces_the_model_access_sequence() {
        // Solo scanner over 2 registers: era read, era CAS, collect x2,
        // validate x2 — six announced accesses, exactly the model's
        // step count for a clean solo scan.
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let board = HelpBoard::new(1);
        array.write(1, 4).unwrap();
        let mut pauses = 0u32;
        let (view, outcome) =
            helping_scan_paused(&array, &board, &ScanPolicy::default(), || pauses += 1);
        assert_eq!(pauses, 6);
        assert_eq!(view.values(), vec![0, 4]);
        assert_eq!(outcome.recollect_passes, 0);
        assert!(!outcome.helped);
        assert_eq!(board.era(), 1);
    }

    #[test]
    fn paused_write_announces_both_paths() {
        let array: RegisterArray<u64> = RegisterArray::new(2, 0);
        let board = HelpBoard::new(1);
        // Calm path: distress read, 2 value reads, the store.
        let mut pauses = 0u32;
        let (t, outcome) = storm_write_paused(&array, &board, 0, 0, || pauses += 1);
        assert_eq!(pauses, 4);
        assert_eq!(t, 1);
        assert!(!outcome.published_help);
        // Helping path: distress read, era read, collect x2,
        // validate x2, publish, store.
        board.distress.store(1, Ordering::SeqCst);
        let mut pauses = 0u32;
        let (t, outcome) = storm_write_paused(&array, &board, 0, 0, || pauses += 1);
        assert_eq!(pauses, 8);
        assert_eq!(t, 2);
        assert!(outcome.published_help);
        let (tag, view) = board.adopt(0).expect("record published");
        assert_eq!(tag, 0, "tag is the era read before the collect");
        assert_eq!(view.values(), vec![1, 0], "view predates the store");
    }

    #[test]
    fn paused_scan_scripted_starvation_adopts() {
        // Script a starvation episode through the pause hook itself:
        // dirty the register between the scanner's collect (#3) and its
        // validate read (#4) so the pass patches, then publish a fresh
        // record right before the board poll (#6). With bound 1 the
        // announced sequence is era read, CAS, collect, validate,
        // distress store, poll-and-adopt.
        let array: RegisterArray<u64> = RegisterArray::new(1, 0);
        let board: HelpBoard<u64> = HelpBoard::new(1);
        let mut calls = 0u32;
        let (view, outcome) = helping_scan_paused(
            &array,
            &board,
            &ScanPolicy {
                starvation_bound: 1,
            },
            || {
                calls += 1;
                match calls {
                    4 => array.write(0, 7).unwrap(),
                    6 => board.publish(0, 1, Arc::new(View::new(array.collect()))),
                    _ => {}
                }
            },
        );
        assert_eq!(calls, 6);
        assert!(outcome.helped, "the poll must adopt the tag-1 record");
        assert_eq!(outcome.recollect_passes, 1);
        assert_eq!(view.values(), vec![7]);
        assert_eq!(board.distress_level(), 1, "paused distress is sticky");
    }

    #[test]
    fn starved_scanner_adopts_a_helped_view() {
        // One writer storms a 2-register array through helping_write
        // with (k, k) pairs; scanners with a starvation bound of 0
        // enter distress on their first failed pass. Under the storm,
        // scans must keep completing (wait-freedom), every returned
        // view must satisfy the pair invariant whether helped or not,
        // and at least some scans should resolve via adoption.
        let array = Arc::new(RegisterArray::new(2, 0u64));
        let board = Arc::new(HelpBoard::new(1));
        let stop = Arc::new(AtomicBool::new(false));
        let policy = ScanPolicy {
            starvation_bound: 0,
        };
        crossbeam::scope(|s| {
            let wa = Arc::clone(&array);
            let wb = Arc::clone(&board);
            let ws = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut k = 1u64;
                while !ws.load(Ordering::Relaxed) {
                    helping_write(&wa, &wb, 0, 0, k).unwrap();
                    helping_write(&wa, &wb, 0, 1, k).unwrap();
                    k += 1;
                }
            });
            for _ in 0..500 {
                let (view, outcome) = helping_scan(&array, &board, &policy);
                let v = view.values();
                assert!(
                    v[0] >= v[1] && v[0] - v[1] <= 1,
                    "torn {}view: {v:?}",
                    if outcome.helped { "helped " } else { "" }
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(board.distress_level(), 0, "distress must be balanced");
    }
}
