//! Property and stress tests for the snapshot substrate.

use std::sync::Arc;

use proptest::prelude::*;
use ts_register::RegisterArray;
use ts_snapshot::{double_collect_scan, try_scan, View, WaitFreeSnapshot};

proptest! {
    /// A quiescent scan returns exactly the written values, for any
    /// write pattern.
    #[test]
    fn quiescent_scan_is_exact(
        m in 1usize..12,
        writes in proptest::collection::vec((0usize..12, any::<u64>()), 0..40),
    ) {
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        let mut expected = vec![0u64; m];
        for &(idx, v) in &writes {
            let idx = idx % m;
            array.write(idx, v).unwrap();
            expected[idx] = v;
        }
        let view = double_collect_scan(&array);
        prop_assert_eq!(view.values(), expected);
        // try_scan agrees when quiescent.
        let view2 = try_scan(&array, 2).unwrap();
        prop_assert!(view.same_writes(&view2));
    }

    /// Views with equal stamp vectors are `same_writes`; any single
    /// extra write breaks it.
    #[test]
    fn same_writes_tracks_stamps(m in 1usize..8, idx in 0usize..8) {
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        let a = View::new(array.collect());
        let b = View::new(array.collect());
        prop_assert!(a.same_writes(&b));
        array.write(idx % m, 7).unwrap();
        let c = View::new(array.collect());
        prop_assert!(!a.same_writes(&c));
    }
}

#[test]
fn snapshot_scans_are_monotone_per_scanner_under_heavy_updates() {
    let n_components = 3;
    let snap = Arc::new(WaitFreeSnapshot::new(n_components, 0u64));
    let updaters: Vec<_> = (0..n_components)
        .map(|i| snap.take_updater(i).unwrap())
        .collect();
    crossbeam::scope(|s| {
        for upd in updaters {
            s.spawn(move |_| {
                for k in 1..=800u64 {
                    upd.update(k);
                }
            });
        }
        for _ in 0..3 {
            let snap = Arc::clone(&snap);
            s.spawn(move |_| {
                let mut prev = vec![0u64; n_components];
                for _ in 0..400 {
                    let cur = snap.scan();
                    for (p, c) in prev.iter().zip(&cur) {
                        assert!(c >= p, "scan regressed: {prev:?} then {cur:?}");
                    }
                    prev = cur;
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn scan_view_is_a_consistent_cut_of_two_linked_registers() {
    // Writer maintains r1 = f(r0) (here r1 = 2·r0) by writing r0 then
    // r1; a linearizable view must satisfy r1 ∈ {2·r0, 2·(r0−1)}.
    let array = Arc::new(RegisterArray::new(2, 0u64));
    crossbeam::scope(|s| {
        let w = Arc::clone(&array);
        s.spawn(move |_| {
            for k in 1..=5_000u64 {
                w.write(0, k).unwrap();
                w.write(1, 2 * k).unwrap();
            }
        });
        for _ in 0..2 {
            let a = Arc::clone(&array);
            s.spawn(move |_| {
                for _ in 0..500 {
                    let v = double_collect_scan(&a).values();
                    let (r0, r1) = (v[0], v[1]);
                    assert!(
                        r1 == 2 * r0 || (r0 > 0 && r1 == 2 * (r0 - 1)),
                        "inconsistent cut: r0={r0}, r1={r1}"
                    );
                }
            });
        }
    })
    .unwrap();
}
