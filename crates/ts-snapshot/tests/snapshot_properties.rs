//! Property and stress tests for the snapshot substrate.

use std::sync::Arc;

use proptest::prelude::*;
use ts_register::RegisterArray;
use ts_snapshot::{
    adaptive_scan, classic_double_collect_scan, double_collect_scan, helping_scan, helping_write,
    try_scan, HelpBoard, ScanPolicy, View, WaitFreeSnapshot,
};

proptest! {
    /// A quiescent scan returns exactly the written values, for any
    /// write pattern.
    #[test]
    fn quiescent_scan_is_exact(
        m in 1usize..12,
        writes in proptest::collection::vec((0usize..12, any::<u64>()), 0..40),
    ) {
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        let mut expected = vec![0u64; m];
        for &(idx, v) in &writes {
            let idx = idx % m;
            array.write(idx, v).unwrap();
            expected[idx] = v;
        }
        let view = double_collect_scan(&array);
        prop_assert_eq!(view.values(), expected);
        // try_scan agrees when quiescent.
        let view2 = try_scan(&array, 2).unwrap();
        prop_assert!(view.same_writes(&view2));
    }

    /// Views with equal stamp vectors are `same_writes`; any single
    /// extra write breaks it.
    #[test]
    fn same_writes_tracks_stamps(m in 1usize..8, idx in 0usize..8) {
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        let a = View::new(array.collect());
        let b = View::new(array.collect());
        prop_assert!(a.same_writes(&b));
        array.write(idx % m, 7).unwrap();
        let c = View::new(array.collect());
        prop_assert!(!a.same_writes(&c));
    }
}

proptest! {
    /// Every rung of the scan ladder returns the same quiescent view
    /// for any write pattern, across the block boundary capacities:
    /// the classic full-sweep baseline, the summary-validated
    /// double-collect, the dirty-block adaptive retry and the helping
    /// scan are different retry strategies over one linearizable
    /// answer.
    #[test]
    fn scan_ladder_rungs_agree_when_quiescent(
        size_sel in 0usize..3,
        writes in proptest::collection::vec((0usize..65, any::<u64>()), 0..50),
    ) {
        let m = [63usize, 64, 65][size_sel];
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        let mut expected = vec![0u64; m];
        for &(idx, v) in &writes {
            let idx = idx % m;
            array.write(idx, v).unwrap();
            expected[idx] = v;
        }
        let (classic, classic_out) = classic_double_collect_scan(&array);
        prop_assert_eq!(classic.values(), expected.clone());
        prop_assert_eq!(classic_out.recollect_passes, 0);
        let (adaptive, adaptive_out) = adaptive_scan(&array);
        prop_assert!(classic.same_writes(&adaptive));
        prop_assert_eq!(adaptive_out.recollect_passes, 0);
        prop_assert_eq!(adaptive_out.patched_registers, 0);
        let board = HelpBoard::new(1);
        let policy = ScanPolicy::default();
        let (helped, helped_out) = helping_scan(&array, &board, &policy);
        prop_assert!(classic.same_writes(&helped));
        prop_assert!(!helped_out.helped, "a quiescent scan never needs help");
    }
}

#[test]
fn snapshot_scans_are_monotone_per_scanner_under_heavy_updates() {
    let n_components = 3;
    let snap = Arc::new(WaitFreeSnapshot::new(n_components, 0u64));
    let updaters: Vec<_> = (0..n_components)
        .map(|i| snap.take_updater(i).unwrap())
        .collect();
    crossbeam::scope(|s| {
        for upd in updaters {
            s.spawn(move |_| {
                for k in 1..=800u64 {
                    upd.update(k);
                }
            });
        }
        for _ in 0..3 {
            let snap = Arc::clone(&snap);
            s.spawn(move |_| {
                let mut prev = vec![0u64; n_components];
                for _ in 0..400 {
                    let cur = snap.scan();
                    for (p, c) in prev.iter().zip(&cur) {
                        assert!(c >= p, "scan regressed: {prev:?} then {cur:?}");
                    }
                    prev = cur;
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn scan_view_is_a_consistent_cut_of_two_linked_registers() {
    // Writer maintains r1 = f(r0) (here r1 = 2·r0) by writing r0 then
    // r1; a linearizable view must satisfy r1 ∈ {2·r0, 2·(r0−1)}.
    let array = Arc::new(RegisterArray::new(2, 0u64));
    crossbeam::scope(|s| {
        let w = Arc::clone(&array);
        s.spawn(move |_| {
            for k in 1..=5_000u64 {
                w.write(0, k).unwrap();
                w.write(1, 2 * k).unwrap();
            }
        });
        for _ in 0..2 {
            let a = Arc::clone(&array);
            s.spawn(move |_| {
                for _ in 0..500 {
                    let v = double_collect_scan(&a).values();
                    let (r0, r1) = (v[0], v[1]);
                    assert!(
                        r1 == 2 * r0 || (r0 > 0 && r1 == 2 * (r0 - 1)),
                        "inconsistent cut: r0={r0}, r1={r1}"
                    );
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn adaptive_and_helping_scans_return_consistent_cuts_under_storm() {
    // The linked-register invariant of the classic-scan test, but
    // against the upper rungs of the ladder and with the writer going
    // through `helping_write` so the help board is live: whichever way
    // a view was obtained — validated adaptively or adopted from a
    // helper — it must still be a consistent cut.
    let array = Arc::new(RegisterArray::new(2, 0u64));
    let board = Arc::new(HelpBoard::new(1));
    let policy = ScanPolicy {
        starvation_bound: 1,
    };
    let check = |v: Vec<u64>, rung: &str| {
        let (r0, r1) = (v[0], v[1]);
        assert!(
            r1 == 2 * r0 || (r0 > 0 && r1 == 2 * (r0 - 1)),
            "{rung} returned an inconsistent cut: r0={r0}, r1={r1}"
        );
    };
    crossbeam::scope(|s| {
        {
            let (a, b) = (Arc::clone(&array), Arc::clone(&board));
            s.spawn(move |_| {
                for k in 1..=4_000u64 {
                    // r0 then r1 = 2·r0, each write helping-aware so
                    // distressed scanners can adopt mid-storm.
                    helping_write(&a, &b, 0, 0, k).unwrap();
                    helping_write(&a, &b, 0, 1, 2 * k).unwrap();
                }
            });
        }
        {
            let a = Arc::clone(&array);
            s.spawn(move |_| {
                for _ in 0..400 {
                    check(adaptive_scan(&a).0.values(), "adaptive_scan");
                }
            });
        }
        {
            let (a, b) = (Arc::clone(&array), Arc::clone(&board));
            s.spawn(move |_| {
                let mut helped = 0u64;
                for _ in 0..400 {
                    let (view, out) = helping_scan(&a, &b, &policy);
                    check(view.values(), "helping_scan");
                    helped += u64::from(out.helped);
                }
                // Not asserted > 0: adoption depends on the schedule.
                // The corpus replay test pins a deterministic adoption.
                let _ = helped;
            });
        }
    })
    .unwrap();
    assert_eq!(
        board.distress_level(),
        0,
        "distress must be balanced at quiescence"
    );
}
