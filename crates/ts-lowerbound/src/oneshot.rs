//! The Section 4 one-shot covering construction, executable.
//!
//! The proof of Theorem 1.2 builds an execution visiting configurations
//! `C1, ..., Clast` whose covered register sets grow until
//! `m − log n − O(1)` registers are covered, where `m = ⌊√(2n)⌋`. The
//! engine here runs the same construction against a concrete
//! deterministic one-shot algorithm:
//!
//! 1. **Initial covering (Figure 1)** — pause idle processes one at a
//!    time (each solo until poised to write) until some column of the
//!    ordered signature reaches the stepped diagonal: the configuration
//!    is `(j, ℓ−j)`-full.
//! 2. **Inductive step (Figure 2)** — while `ℓ − j ≥ 3` and ≥ 2 idle
//!    processes remain: perform a block-write by a covering set `B0`
//!    (falling back to `B1` when a candidate completes without escaping,
//!    mirroring Lemma 4.1), then pause idle processes outside the
//!    protected set `R` until a fresh register set `Q` fills up to the
//!    diagonal. `Case 1` keeps `ℓ`; `Case 2` (two block-writes and
//!    `|Q| = 1`) lowers `ℓ` by one — the paper shows Case 2 happens at
//!    most `log n` times.
//! 3. **Exhaustion** — pause any remaining idle processes for the final
//!    covered-register count.
//!
//! The report records a grid per step, so the Figure 1 and Figure 2
//! artifacts come from real configurations of real algorithms.

use std::fmt;

use ts_model::{solo_run, Algorithm, ProcId, SoloOutcome, System};

use crate::bounds::{covering_grid_width, oneshot_lower_bound};
use crate::grid::Grid;
use crate::signature::{full_register_set, OrderedSignature};

/// Which case of Figure 2 an inductive step realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepCase {
    /// One block-write sufficed, or the new column set had size ≥ 2:
    /// `ℓ` is unchanged.
    Case1,
    /// Two block-writes and a single new column: `ℓ` decreases by one.
    Case2,
}

/// One recorded configuration of the construction.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Human-readable step label.
    pub label: String,
    /// Raw signature (per model register index).
    pub signature: Vec<usize>,
    /// Ordered signature.
    pub ordered: OrderedSignature,
    /// Current `ℓ` constraint.
    pub l: usize,
    /// Current fullness column count `j`.
    pub j: usize,
    /// Case classification (inductive steps only).
    pub case: Option<StepCase>,
    /// ASCII grid of the configuration.
    pub grid: String,
    /// Idle processes remaining after the step.
    pub idle_remaining: usize,
}

/// Outcome of running the construction to completion.
#[derive(Debug, Clone)]
pub struct OneShotReport {
    /// Number of processes.
    pub n: usize,
    /// Grid width `m = ⌊√(2n)⌋`.
    pub grid_width: usize,
    /// All recorded steps, in order.
    pub steps: Vec<StepRecord>,
    /// Final `j` (columns at the diagonal).
    pub final_j: usize,
    /// Final `ℓ`.
    pub final_l: usize,
    /// Registers covered at the very end (after exhaustion).
    pub final_covered: usize,
    /// Registers the algorithm wrote during the construction.
    pub registers_written: usize,
    /// Theorem 1.2's bound `√(2n) − log n − 2` for this `n`.
    pub lower_bound: f64,
    /// Times Case 2 occurred (paper: at most `log n`).
    pub case2_count: usize,
}

impl fmt::Display for OneShotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "one-shot covering construction: n = {}, m = {}",
            self.n, self.grid_width
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "--- {} (l = {}, j = {}, case = {:?})",
                s.label, s.l, s.j, s.case
            )?;
            writeln!(f, "{}", s.grid)?;
        }
        writeln!(
            f,
            "final: j = {}, l = {}, covered = {}, written = {}, bound = {:.2}, case2 = {}",
            self.final_j,
            self.final_l,
            self.final_covered,
            self.registers_written,
            self.lower_bound,
            self.case2_count
        )
    }
}

/// Engine for the Section 4 construction.
#[derive(Debug)]
pub struct OneShotConstruction;

const SOLO_BUDGET: usize = 1_000_000;

impl OneShotConstruction {
    /// Runs the construction against a one-shot model algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm violates solo termination (a paused run
    /// exceeds an internal step budget).
    pub fn run<A: Algorithm + Clone>(algorithm: A) -> OneShotReport {
        assert_eq!(
            algorithm.ops_per_process(),
            Some(1),
            "the Section 4 construction applies to one-shot objects"
        );
        let n = algorithm.processes();
        let grid_width = covering_grid_width(n);
        let mut sys = System::new(algorithm);
        let mut steps: Vec<StepRecord> = Vec::new();
        let mut protected: Vec<usize> = Vec::new();
        let mut l = grid_width;
        let mut j = 0usize;
        let mut case2_count = 0usize;

        let record = |sys: &System<A>,
                      label: String,
                      l: usize,
                      j: usize,
                      case: Option<StepCase>,
                      steps: &mut Vec<StepRecord>| {
            let signature = sys.config().signature();
            let ordered = OrderedSignature::from_signature(&signature);
            let grid = Grid::new(ordered.clone(), l).render();
            steps.push(StepRecord {
                label,
                signature,
                ordered,
                l,
                j,
                case,
                grid,
                idle_remaining: sys.idle_processes().len(),
            });
        };

        // Phase 0: initial covering (Figure 1). Pause processes until a
        // column reaches the diagonal.
        for p in 0..n {
            if !sys.never_invoked(p) {
                continue;
            }
            let _ = solo_run(&mut sys, p, &protected, SOLO_BUDGET).expect("solo run");
            let sig = sys.config().signature();
            let ordered = OrderedSignature::from_signature(&sig);
            if let Some(col) = ordered.diagonal_column(l) {
                j = col;
                protected = full_register_set(&sig, j, l.saturating_sub(j)).unwrap_or_default();
                break;
            }
        }
        record(
            &sys,
            format!("initial covering (Figure 1): column {j} reaches the diagonal"),
            l,
            j,
            None,
            &mut steps,
        );

        // Inductive rounds (Figure 2).
        'rounds: while j >= 1 && l >= j + 3 && sys.idle_processes().len() >= 2 {
            // Pick B0, B1, B2: three disjoint covering sets for the
            // protected registers.
            let covering = sys.config().covering_map();
            let mut blocks: [Vec<ProcId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for &r in &protected {
                let Some(cands) = covering.get(&r) else {
                    break 'rounds;
                };
                if cands.len() < 3 {
                    break 'rounds;
                }
                for (b, &p) in blocks.iter_mut().zip(cands.iter()) {
                    b.push(p);
                }
            }

            // Block-write by B0.
            let mut blocks_used = 1usize;
            for &p in &blocks[0] {
                sys.step(p).expect("B0 member is poised to write");
            }

            // Pause idle processes outside the protected set until some
            // fresh register set Q reaches the (l − j − |Q|) threshold.
            let mut extended = false;
            let idle: Vec<ProcId> = sys.idle_processes();
            for u in idle {
                match solo_run(&mut sys, u, &protected, SOLO_BUDGET).expect("solo run") {
                    SoloOutcome::CoversOutside { .. } => {}
                    SoloOutcome::Completed { .. } => {
                        // The candidate finished without escaping; use the
                        // second block-write to obliterate its trace
                        // (Lemma 4.1's β′) and keep going.
                        if blocks_used == 1 {
                            for &p in &blocks[1] {
                                sys.step(p).expect("B1 member is poised to write");
                            }
                            blocks_used = 2;
                        }
                        continue;
                    }
                    SoloOutcome::BudgetExhausted => {
                        panic!("solo run exhausted budget — solo termination violated")
                    }
                }
                // Extension check: a non-empty Q outside the protected
                // set with every member covered ≥ l − j − |Q| times.
                let sig = sys.config().signature();
                let mut outside: Vec<(usize, usize)> = sig
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(r, c)| !protected.contains(r) && *c > 0)
                    .collect();
                outside.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
                let mut q_found: Option<usize> = None;
                for nu in 1..=outside.len() {
                    let min_cov = outside[..nu].iter().map(|&(_, c)| c).min().unwrap_or(0);
                    if min_cov + nu + j >= l && min_cov > 0 {
                        q_found = Some(nu);
                        break;
                    }
                }
                if let Some(nu) = q_found {
                    let case = if blocks_used == 1 || nu >= 2 {
                        StepCase::Case1
                    } else {
                        case2_count += 1;
                        l -= 1;
                        StepCase::Case2
                    };
                    for &(r, _) in &outside[..nu] {
                        protected.push(r);
                    }
                    j += nu;
                    record(
                        &sys,
                        format!("inductive step: |Q| = {nu}, {blocks_used} block-write(s)"),
                        l,
                        j,
                        Some(case),
                        &mut steps,
                    );
                    extended = true;
                    break;
                }
            }
            if !extended {
                break;
            }
        }

        // Exhaustion: pause everyone who never ran, to maximize the final
        // covered count.
        for p in 0..n {
            if sys.never_invoked(p) {
                let _ = solo_run(&mut sys, p, &protected, SOLO_BUDGET).expect("solo run");
            }
        }
        record(
            &sys,
            "exhaustion: all processes paused or complete".to_string(),
            l,
            j,
            None,
            &mut steps,
        );

        let final_sig = sys.config().signature();
        let final_covered = final_sig.iter().filter(|&&c| c > 0).count();
        OneShotReport {
            n,
            grid_width,
            final_j: j,
            final_l: l,
            final_covered,
            registers_written: sys.registers_written(),
            lower_bound: oneshot_lower_bound(n),
            case2_count,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::model::{BoundedModel, SimpleModel};

    #[test]
    fn bounded_model_reaches_diagonal_and_extends() {
        let report = OneShotConstruction::run(BoundedModel::new(16));
        assert!(report.final_j >= 2, "{report}");
        assert!(report.final_covered >= report.final_j, "{report}");
        assert!(
            report.final_covered as f64 >= report.lower_bound,
            "covered {} below bound {}",
            report.final_covered,
            report.lower_bound
        );
        // Figure 1 step is always recorded first.
        assert!(report.steps[0].label.contains("Figure 1"));
    }

    #[test]
    fn bounded_model_scales_to_64_processes() {
        let report = OneShotConstruction::run(BoundedModel::new(64));
        assert!(
            report.final_covered as f64 >= report.lower_bound,
            "covered {} below bound {:.2}",
            report.final_covered,
            report.lower_bound
        );
        assert!(report.final_j >= 4, "{report}");
        // Case 2 is bounded by log n.
        assert!(report.case2_count as f64 <= (64f64).log2());
    }

    #[test]
    fn simple_model_covers_half_n_registers_at_exhaustion() {
        let report = OneShotConstruction::run(SimpleModel::new(16));
        // The simple algorithm's registers accept only two writers, so
        // the 3-coverable inductive step never applies; exhaustion still
        // covers all ⌈n/2⌉ registers.
        assert_eq!(report.final_covered, 8, "{report}");
        assert!(report.final_covered as f64 >= report.lower_bound);
    }

    #[test]
    fn grids_render_nonempty() {
        let report = OneShotConstruction::run(BoundedModel::new(8));
        for step in &report.steps {
            assert!(
                step.grid.contains('+'),
                "missing baseline in {}",
                step.label
            );
        }
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn long_lived_algorithms_are_rejected() {
        use ts_core::model::CollectMaxModel;
        let _ = OneShotConstruction::run(CollectMaxModel::new(4));
    }
}
