//! The Lemma 3.1/3.2 long-lived covering construction, executable.
//!
//! Theorem 1.1's proof shows any long-lived timestamp object has a
//! reachable `(3, ⌊n/2⌋)`-configuration — `⌊n/2⌋` processes covering
//! registers with at most 3 per register, hence ≥ `⌊n/6⌋` registers.
//! The inductive step inserts a fresh process, lets it run solo until it
//! covers a register outside `R3(C)` (the 3-covered set), and uses three
//! block-writes to hide its trace from everyone else.
//!
//! The engine below performs that insertion loop against a concrete
//! long-lived model algorithm, recording the signature after every
//! insertion and verifying the `(3, k)` invariant. It also provides
//! [`signature_recurrence`], the pigeonhole heart of Lemma 3.1: long
//! executions must revisit a signature.

use std::collections::HashMap;

use ts_model::{Algorithm, Machine, Poised, ProcId, System};

use crate::bounds::longlived_lower_bound_int;
use crate::signature::as_3k_configuration;

/// One insertion step of the construction.
#[derive(Debug, Clone)]
pub struct InsertionRecord {
    /// The process that was inserted and paused.
    pub pid: ProcId,
    /// The register it now covers.
    pub covers: usize,
    /// Signature after the insertion.
    pub signature: Vec<usize>,
    /// `k` of the resulting `(3, k)`-configuration.
    pub k: usize,
}

/// Outcome of the long-lived construction.
#[derive(Debug, Clone)]
pub struct LongLivedReport {
    /// Number of processes.
    pub n: usize,
    /// Insertions performed (the final `k`).
    pub reached_k: usize,
    /// Registers covered in the final configuration.
    pub covered: usize,
    /// The paper's target `⌊n/6⌋`.
    pub lower_bound: usize,
    /// Per-insertion records.
    pub insertions: Vec<InsertionRecord>,
}

/// Engine for the Lemma 3.2 construction.
#[derive(Debug)]
pub struct LongLivedConstruction;

const STEP_BUDGET: usize = 1_000_000;

impl LongLivedConstruction {
    /// Builds a `(3, k)`-configuration with `k` as close to
    /// `⌊n/2⌋` as the algorithm's structure allows.
    ///
    /// A fresh process is run solo until poised to write a register
    /// covered by at most two other processes (i.e. outside `R3`); writes
    /// to 3-covered registers are allowed to execute (they cannot create
    /// a 4-cover). For single-writer algorithms like collect-max, `R3`
    /// stays empty and every insertion covers a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if an inserted process neither pauses nor completes within
    /// the step budget (solo-termination violation), or if the `(3, k)`
    /// invariant breaks.
    pub fn run<A: Algorithm + Clone>(algorithm: A) -> LongLivedReport {
        assert!(
            algorithm.ops_per_process().is_none(),
            "the Lemma 3.2 construction targets long-lived objects; \
             use run_any for the one-shot (3,k) demonstration"
        );
        Self::run_any(algorithm)
    }

    /// Like [`LongLivedConstruction::run`], but accepts any algorithm:
    /// each insertion consumes one invocation of a fresh process, so
    /// one-shot MWMR algorithms (where registers genuinely get
    /// 3-covered) can be driven into `(3, k)`-configurations too.
    ///
    /// # Panics
    ///
    /// Panics on solo-termination violations or if the `(3, k)`
    /// invariant breaks.
    pub fn run_any<A: Algorithm + Clone>(algorithm: A) -> LongLivedReport {
        let n = algorithm.processes();
        let target_k = n / 2;
        let mut sys = System::new(algorithm);
        let mut insertions = Vec::new();

        for pid in 0..n {
            if insertions.len() >= target_k {
                break;
            }
            let Some(covers) = Self::insert(&mut sys, pid) else {
                // The process completed without ever being pausable on a
                // ≤2-covered register (it only wrote 3-covered ones);
                // move on — its trace sits inside covered registers.
                continue;
            };
            let signature = sys.config().signature();
            let k = as_3k_configuration(&signature)
                .expect("construction must maintain the (3, k) invariant");
            assert_eq!(k, insertions.len() + 1, "every insertion adds one coverer");
            insertions.push(InsertionRecord {
                pid,
                covers,
                signature,
                k,
            });
        }

        let final_sig = sys.config().signature();
        let covered = final_sig.iter().filter(|&&c| c > 0).count();
        LongLivedReport {
            n,
            reached_k: insertions.len(),
            covered,
            lower_bound: longlived_lower_bound_int(n),
            insertions,
        }
    }

    /// Runs `pid` solo until poised to write a register covered by ≤ 2
    /// others; returns the covered register, or `None` if the operation
    /// completed first (writes to 3-covered registers execute freely —
    /// they cannot create a 4-cover).
    fn insert<A: Algorithm + Clone>(sys: &mut System<A>, pid: ProcId) -> Option<usize> {
        use ts_model::StepOutcome;
        for _ in 0..STEP_BUDGET {
            if let Some(Poised::Write { reg, .. }) = sys.config().poised(pid) {
                let mut sig = sys.config().signature();
                // Exclude pid's own covering from the count.
                sig[reg] -= 1;
                if sig[reg] <= 2 {
                    return Some(reg);
                }
            }
            if let StepOutcome::Completed { .. } = sys.step(pid).expect("inserted process steps") {
                return None;
            }
        }
        panic!("process p{pid} neither paused nor completed — solo termination violated");
    }
}

/// The pigeonhole core of Lemma 3.1: run repeated "cover, then quiesce"
/// cycles and report the first two cycle indices whose covering
/// signatures coincide.
///
/// Each cycle pauses processes `0..k` at covering points (via
/// [`LongLivedConstruction`]-style insertion), records the signature,
/// then lets every paused process finish so the system returns to a
/// quiescent configuration. Since the set of signatures is finite, a
/// repeat must occur; the paper leverages exactly this to splice
/// schedules.
///
/// # Panics
///
/// Panics if no repeat occurs within `max_cycles` (with
/// `max_cycles ≥ #signatures` this is impossible for terminating
/// algorithms).
pub fn signature_recurrence<A: Algorithm + Clone>(
    algorithm: A,
    k: usize,
    max_cycles: usize,
) -> (usize, usize, Vec<usize>) {
    let n = algorithm.processes();
    assert!(k <= n, "cannot pause more processes than exist");
    let mut sys = System::new(algorithm);
    let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
    for cycle in 0..max_cycles {
        // Pause processes 0..k at their next covering point.
        for pid in 0..k {
            let _ = LongLivedConstruction::insert(&mut sys, pid);
        }
        let sig = sys.config().signature();
        if let Some(&prev) = seen.get(&sig) {
            return (prev, cycle, sig);
        }
        seen.insert(sig.clone(), cycle);
        // Quiesce: let every pending operation finish.
        for pid in 0..n {
            if sys.config().procs[pid].is_some() {
                let _: <A::Machine as Machine>::Output = sys
                    .run_solo_to_completion(pid, STEP_BUDGET)
                    .expect("finish");
            }
        }
        assert!(sys.quiescent());
    }
    panic!("no repeated signature within {max_cycles} cycles");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::r3;
    use ts_core::model::CollectMaxModel;

    #[test]
    fn collect_max_reaches_half_n_coverers() {
        let report = LongLivedConstruction::run(CollectMaxModel::new(12));
        assert_eq!(report.reached_k, 6);
        // Collect-max registers are single-writer: every insertion covers
        // a distinct register.
        assert_eq!(report.covered, 6);
        assert!(report.covered >= report.lower_bound);
    }

    #[test]
    fn signatures_stay_3k_throughout() {
        let report = LongLivedConstruction::run(CollectMaxModel::new(10));
        for ins in &report.insertions {
            assert!(
                as_3k_configuration(&ins.signature).is_some(),
                "insertion {ins:?}"
            );
        }
    }

    #[test]
    fn covered_meets_theorem_bound_for_various_n() {
        for n in [6, 12, 24, 48] {
            let report = LongLivedConstruction::run(CollectMaxModel::new(n));
            assert!(
                report.covered >= report.lower_bound,
                "n={n}: covered {} < bound {}",
                report.covered,
                report.lower_bound
            );
        }
    }

    #[test]
    fn r3_is_empty_for_single_writer_algorithms() {
        let report = LongLivedConstruction::run(CollectMaxModel::new(8));
        let last = report.insertions.last().unwrap();
        assert!(r3(&last.signature).is_empty());
    }

    #[test]
    fn signature_recurrence_is_found_quickly() {
        let (first, second, sig) = signature_recurrence(CollectMaxModel::new(4), 2, 10);
        assert!(first < second);
        assert_eq!(sig.iter().sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "long-lived")]
    fn one_shot_algorithms_are_rejected_by_run() {
        use ts_core::model::SimpleModel;
        let _ = LongLivedConstruction::run(SimpleModel::new(4));
    }

    #[test]
    fn run_any_three_covers_bounded_model_registers() {
        use ts_core::model::BoundedModel;
        // Algorithm 4's registers are multi-writer: early insertions pile
        // onto R[1] until it is 3-covered, then later ones spill over —
        // genuinely exercising the ≤3 cap (collect-max never can).
        let report = LongLivedConstruction::run_any(BoundedModel::new(16));
        assert_eq!(report.reached_k, 8);
        let last = report.insertions.last().unwrap();
        assert!(
            last.signature.contains(&3),
            "expected a 3-covered register: {:?}",
            last.signature
        );
        assert!(as_3k_configuration(&last.signature).is_some());
        // More coverers than covered registers: the cap forced spillover.
        assert!(report.covered < report.reached_k);
    }

    #[test]
    fn run_any_matches_run_for_long_lived_algorithms() {
        let a = LongLivedConstruction::run(CollectMaxModel::new(10));
        let b = LongLivedConstruction::run_any(CollectMaxModel::new(10));
        assert_eq!(a.reached_k, b.reached_k);
        assert_eq!(a.covered, b.covered);
    }
}
