//! Executable analogue of Lemma 2.1 (Ellen, Fatourou, Ruppert).
//!
//! The lemma: if disjoint process sets `B0, B1, B2` each cover a register
//! set `R` in a reachable configuration `C`, then for at least one
//! `i ∈ {0, 1}`, every `Ui`-only execution from `π_{Bi}(C)` containing a
//! complete `getTS()` writes outside `R`. For a *deterministic* algorithm
//! the disjunction is decidable by simulation: run each candidate after
//! the corresponding block-write and watch for an outside write.
//!
//! The executable form doubles as a correctness probe: if *neither*
//! candidate writes outside `R`, the lemma's proof shows how to build two
//! indistinguishable executions with oppositely-ordered `getTS` calls —
//! i.e. the algorithm under test is wrong (or not a timestamp object).

use ts_model::{solo_run, Algorithm, ProcId, SoloOutcome, System};

/// Result of probing Lemma 2.1 on a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma21Outcome {
    /// Whether candidate `q0` (after `π_{B0}`) wrote/covers outside `R`.
    pub q0_escapes: bool,
    /// Whether candidate `q1` (after `π_{B1}`) wrote/covers outside `R`.
    pub q1_escapes: bool,
}

impl Lemma21Outcome {
    /// The index `i` guaranteed by the lemma, preferring `0`.
    pub fn witness(&self) -> Option<usize> {
        if self.q0_escapes {
            Some(0)
        } else if self.q1_escapes {
            Some(1)
        } else {
            None
        }
    }

    /// Whether the lemma's guarantee held (it must, for correct
    /// algorithms).
    pub fn holds(&self) -> bool {
        self.q0_escapes || self.q1_escapes
    }
}

/// Probes Lemma 2.1: from (a clone of) `sys`, for each `i ∈ {0, 1}`,
/// performs the block-write `π_{Bi}` and runs `q_i` solo; reports which
/// candidates are forced outside `R` before completing a `getTS`.
///
/// `b0`/`b1` must currently cover registers (each scheduled step must be
/// a write); `q0`/`q1` should have an invocation available.
///
/// # Panics
///
/// Panics if a block-write step fails (e.g. a member of `b0`/`b1` is not
/// actually poised) or the solo run exhausts `budget` (a solo-termination
/// violation).
pub fn probe<A: Algorithm + Clone>(
    sys: &System<A>,
    b0: &[ProcId],
    b1: &[ProcId],
    q0: ProcId,
    q1: ProcId,
    covered: &[usize],
    budget: usize,
) -> Lemma21Outcome {
    let escapes = |block: &[ProcId], q: ProcId| -> bool {
        let mut trial = sys.clone();
        let mut sorted = block.to_vec();
        sorted.sort_unstable();
        for &p in &sorted {
            trial.step(p).expect("block-write member steps");
        }
        match solo_run(&mut trial, q, covered, budget).expect("candidate steps") {
            SoloOutcome::CoversOutside { .. } => true,
            SoloOutcome::Completed { .. } => false,
            SoloOutcome::BudgetExhausted => {
                panic!("candidate q{q} exhausted {budget} steps — solo termination violated")
            }
        }
    };
    Lemma21Outcome {
        q0_escapes: escapes(b0, q0),
        q1_escapes: escapes(b1, q1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::model::{BoundedModel, SimpleModel};
    use ts_model::SoloOutcome;

    #[test]
    fn fresh_bounded_system_forces_everyone_outside_empty_r() {
        // With R = ∅ and empty blocks, both candidates must escape: every
        // getTS writes somewhere.
        let sys = System::new(BoundedModel::new(4));
        let outcome = probe(&sys, &[], &[], 0, 1, &[], 100_000);
        assert!(outcome.q0_escapes && outcome.q1_escapes);
        assert_eq!(outcome.witness(), Some(0));
        assert!(outcome.holds());
    }

    #[test]
    fn covered_register_forces_escape_to_a_new_one() {
        // Pause p0 and p1 covering register 0 (their phase-1 opening
        // write), then block-write with p0 and probe fresh processes:
        // they must cover a register outside {0}.
        let mut sys = System::new(BoundedModel::new(6));
        for p in 0..2 {
            let out = solo_run(&mut sys, p, &[], 100_000).unwrap();
            assert_eq!(out.covered(), Some(0));
        }
        let outcome = probe(&sys, &[0], &[1], 2, 3, &[0], 100_000);
        assert!(
            outcome.holds(),
            "Lemma 2.1 must hold for a correct algorithm: {outcome:?}"
        );
    }

    #[test]
    fn simple_model_candidates_escape_protected_pair_register() {
        // Protect register 0 (owned by p0/p1); candidates p2, p3 write
        // register 1 — outside R — as the lemma forces.
        let mut sys = System::new(SimpleModel::new(6));
        let out = solo_run(&mut sys, 0, &[], 1000).unwrap();
        assert!(matches!(out, SoloOutcome::CoversOutside { reg: 0, .. }));
        let out = solo_run(&mut sys, 1, &[], 1000).unwrap();
        assert!(matches!(out, SoloOutcome::CoversOutside { reg: 0, .. }));
        let outcome = probe(&sys, &[0], &[1], 2, 3, &[0], 1000);
        assert!(outcome.q0_escapes && outcome.q1_escapes);
    }
}
