//! Executable Lemma 4.1: force all but one idle process to cover
//! registers outside a protected set.
//!
//! Lemma 4.1 strengthens Lemma 2.1 by induction: given disjoint sets
//! `B0, B1, B2` covering `R` and a set `U` of idle processes
//! (`|U| ≥ 2`), there is a schedule `β σ β′ σ′` (block-writes
//! interleaved with solo chains) after which **all but one** process of
//! `U` covers a register outside `R`.
//!
//! The proof builds two *chains* `δ_0, δ_1` — concatenations of solo
//! schedules by distinct processes of `U`, each truncated at the point
//! where the process covers a register outside `R`, except the last,
//! which runs a complete `getTS`. At every step Lemma 2.1 guarantees
//! that at least one chain's last process can be forced outside `R`
//! (after that chain's block-write); that chain absorbs the next
//! process of `U`. For deterministic algorithms the whole induction is
//! directly executable: probing a chain is replaying it on a clone.

use ts_model::{block_write_schedule, solo_run, Algorithm, ProcId, SoloOutcome, System};

/// The outcome of running the Lemma 4.1 construction.
#[derive(Debug, Clone)]
pub struct Lemma41Report {
    /// Which block-write (`0` for `B0`, `1` for `B1`) comes first — the
    /// `β` of the lemma's schedule `β σ β′ σ′`.
    pub first_block: usize,
    /// `participants(σ)`: the chain run after the first block-write.
    pub sigma: Vec<ProcId>,
    /// `participants(σ′)`: the chain run after the second block-write.
    pub sigma_prime: Vec<ProcId>,
    /// The one process of `U` left out (part (d): `|σ| + |σ′| = |U| − 1`).
    pub excluded: ProcId,
    /// Registers covered outside the protected set in the final
    /// configuration, by the participants.
    pub covers_outside: Vec<(ProcId, usize)>,
    /// Set when neither chain's candidate could be forced outside `R` —
    /// for a correct timestamp implementation this is impossible
    /// (it contradicts Lemma 2.1), so it flags a broken algorithm.
    pub lemma_violated: bool,
}

/// Runs the Lemma 4.1 construction from configuration `sys` (not
/// modified; all probing happens on clones) and returns both the
/// schedule structure and the resulting system.
///
/// `b0`/`b1` must be disjoint covering sets for `covered` (every member
/// poised on a write into it), and `u` the idle candidates, all
/// distinct from `b0 ∪ b1`.
///
/// # Panics
///
/// Panics if `u.len() < 2`, if a replayed chain member fails to pause
/// where it paused before (non-determinism — machines must be
/// deterministic), or if a solo run exceeds `budget` steps.
pub fn lemma41<A: Algorithm + Clone>(
    sys: &System<A>,
    b0: &[ProcId],
    b1: &[ProcId],
    u: &[ProcId],
    covered: &[usize],
    budget: usize,
) -> (Lemma41Report, System<A>) {
    assert!(u.len() >= 2, "Lemma 4.1 needs |U| ≥ 2");
    let blocks = [b0, b1];

    // Replays `chain` after block-write `π_{B_i}` on a clone; pauses every
    // member at its escape point and returns whether the *last* member
    // escapes (covers outside) or completes its getTS.
    let replay = |i: usize, chain: &[ProcId]| -> bool {
        let mut trial = sys.clone();
        trial
            .run(&block_write_schedule(blocks[i]))
            .expect("block-write members are poised");
        let (members, last) = chain.split_at(chain.len() - 1);
        for &p in members {
            let out = solo_run(&mut trial, p, covered, budget).expect("chain member steps");
            assert!(
                out.covered().is_some(),
                "replayed member p{p} failed to pause — machines must be deterministic"
            );
        }
        match solo_run(&mut trial, last[0], covered, budget).expect("chain last steps") {
            SoloOutcome::CoversOutside { .. } => true,
            SoloOutcome::Completed { .. } => false,
            SoloOutcome::BudgetExhausted => panic!("solo termination violated"),
        }
    };

    // The induction: two chains, each seeded with one process of U.
    let mut chains: [Vec<ProcId>; 2] = [vec![u[0]], vec![u[1]]];
    let mut next = 2;
    let mut violated = false;
    while next < u.len() {
        let j = if replay(0, &chains[0]) {
            0
        } else if replay(1, &chains[1]) {
            1
        } else {
            violated = true;
            break;
        };
        // The escaping chain's last member is truncated at its escape
        // point (replay does that implicitly) and the next process of U
        // is appended as the new running last.
        chains[j].push(u[next]);
        next += 1;
    }

    // Final Lemma 2.1 application: whichever chain's last escapes is σ;
    // the other chain drops its last process entirely (the excluded
    // process of part (d)).
    let j = if replay(0, &chains[0]) {
        0
    } else if replay(1, &chains[1]) {
        1
    } else {
        violated = true;
        0
    };
    let excluded = *chains[1 - j].last().expect("chains are non-empty");
    let short_chain: Vec<ProcId> = chains[1 - j][..chains[1 - j].len() - 1].to_vec();

    // Apply for real: β = π_{B_j}, σ = chain j (all paused at escapes),
    // β′ = π_{B_{1−j}}, σ′ = the other chain minus its last.
    let mut result = sys.clone();
    result
        .run(&block_write_schedule(blocks[j]))
        .expect("block-write members are poised");
    for &p in &chains[j] {
        let out = solo_run(&mut result, p, covered, budget).expect("sigma member steps");
        if out.covered().is_none() && !violated {
            // Only the theoretical-violation path may complete here.
            violated = true;
        }
    }
    result
        .run(&block_write_schedule(blocks[1 - j]))
        .expect("second block-write members are poised");
    for &p in &short_chain {
        let out = solo_run(&mut result, p, covered, budget).expect("sigma' member steps");
        if out.covered().is_none() && !violated {
            violated = true;
        }
    }

    let covers_outside: Vec<(ProcId, usize)> = chains[j]
        .iter()
        .chain(&short_chain)
        .filter_map(|&p| result.config().covers(p).map(|r| (p, r)))
        .filter(|(_, r)| !covered.contains(r))
        .collect();

    (
        Lemma41Report {
            first_block: j,
            sigma: chains[j].clone(),
            sigma_prime: short_chain,
            excluded,
            covers_outside,
            lemma_violated: violated,
        },
        result,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::model::BoundedModel;

    const BUDGET: usize = 1_000_000;

    /// Sets up Algorithm 4's model with `coverers` processes paused on
    /// R[1] (model register 0).
    fn covered_setup(n: usize, coverers: usize) -> System<BoundedModel> {
        let mut sys = System::new(BoundedModel::new(n));
        for p in 0..coverers {
            let out = solo_run(&mut sys, p, &[], BUDGET).unwrap();
            assert_eq!(out.covered(), Some(0));
        }
        sys
    }

    #[test]
    fn all_but_one_idle_process_is_forced_outside() {
        let n = 10;
        let sys = covered_setup(n, 3);
        let u: Vec<ProcId> = (3..n).collect(); // 7 idle processes
        let (report, result) = lemma41(&sys, &[0], &[1], &u, &[0], BUDGET);
        assert!(!report.lemma_violated, "{report:?}");
        // Part (d): |σ| + |σ′| = |U| − 1.
        assert_eq!(
            report.sigma.len() + report.sigma_prime.len(),
            u.len() - 1,
            "{report:?}"
        );
        // Part (e): the first chain is the larger half.
        assert!(report.sigma.len() >= report.sigma_prime.len());
        // Part (b): every participant covers outside R.
        assert_eq!(
            report.covers_outside.len(),
            u.len() - 1,
            "everyone must cover outside: {report:?}"
        );
        for &(p, r) in &report.covers_outside {
            assert_ne!(r, 0, "p{p} covers the protected register");
            assert_eq!(result.config().covers(p), Some(r));
        }
        // Part (c): the excluded process is in U and not a participant.
        assert!(u.contains(&report.excluded));
        assert!(!report.sigma.contains(&report.excluded));
        assert!(!report.sigma_prime.contains(&report.excluded));
    }

    #[test]
    fn works_with_minimal_u() {
        let sys = covered_setup(6, 2);
        let u: Vec<ProcId> = vec![2, 3];
        let (report, _) = lemma41(&sys, &[0], &[1], &u, &[0], BUDGET);
        assert!(!report.lemma_violated);
        assert_eq!(report.sigma.len() + report.sigma_prime.len(), 1);
        assert_eq!(report.covers_outside.len(), 1);
    }

    #[test]
    #[should_panic(expected = "|U| ≥ 2")]
    fn rejects_singleton_u() {
        let sys = covered_setup(4, 2);
        let _ = lemma41(&sys, &[0], &[1], &[2], &[0], BUDGET);
    }

    #[test]
    fn empty_blocks_from_initial_configuration() {
        // The construction's very first application uses B0 = B1 = ∅
        // and R = ∅: every process must end up covering something.
        let sys = System::new(BoundedModel::new(6));
        let u: Vec<ProcId> = (0..6).collect();
        let (report, _) = lemma41(&sys, &[], &[], &u, &[], BUDGET);
        assert!(!report.lemma_violated);
        assert_eq!(report.covers_outside.len(), 5);
    }
}
