//! The geometric grid representation of covering configurations
//! (Figures 1 and 2).
//!
//! A configuration with ordered signature `(s_1, ..., s_m)` is drawn on
//! an `m`-column grid: column `c` has its lowest `s_c` cells shaded (each
//! shaded cell is one covering process). An `ℓ`-constrained configuration
//! keeps all shading strictly below the *stepped diagonal* that starts at
//! height `ℓ − 1` in column 1 and descends one cell per column. Figure 1
//! is the moment a column first reaches the diagonal; Figure 2 shows the
//! two cases of the inductive step.

use crate::signature::OrderedSignature;

/// A renderable covering grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    ordered: OrderedSignature,
    l: usize,
}

impl Grid {
    /// Builds a grid for an ordered signature under an `ℓ` constraint.
    pub fn new(ordered: OrderedSignature, l: usize) -> Self {
        Self { ordered, l }
    }

    /// The ordered signature being drawn.
    pub fn ordered(&self) -> &OrderedSignature {
        &self.ordered
    }

    /// The `ℓ` parameter (diagonal height at column 1 is `ℓ − 1`).
    pub fn l(&self) -> usize {
        self.l
    }

    /// Height of the stepped diagonal over column `c` (1-based):
    /// `ℓ − c`, the maximum shading an `ℓ`-constrained configuration
    /// permits there.
    pub fn diagonal_height(&self, c: usize) -> usize {
        self.l.saturating_sub(c)
    }

    /// ASCII rendering.
    ///
    /// - `#` shaded cell (a covering process)
    /// - `*` shaded cell **on** the diagonal (the column has reached it)
    /// - `/` unshaded diagonal cell
    /// - `.` unshaded cell below the diagonal
    /// - ` ` above the diagonal
    ///
    /// Rows print top-down from height `ℓ − 1` (or the tallest column)
    /// to height 1; a baseline and column indices close the figure.
    pub fn render(&self) -> String {
        let m = self.ordered.width().max(self.l.saturating_sub(1));
        let max_height = (1..=m)
            .map(|c| self.ordered.s(c))
            .max()
            .unwrap_or(0)
            .max(self.l.saturating_sub(1));
        let mut out = String::new();
        for h in (1..=max_height).rev() {
            out.push_str(&format!("{h:>3} |"));
            for c in 1..=m {
                let shaded = self.ordered.s(c) >= h;
                let diag = self.diagonal_height(c) == h;
                let ch = match (shaded, diag) {
                    (true, true) => '*',
                    (true, false) => '#',
                    (false, true) => '/',
                    (false, false) => {
                        if h < self.diagonal_height(c) {
                            '.'
                        } else {
                            ' '
                        }
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out.push_str("    +");
        out.push_str(&"-".repeat(m));
        out.push('\n');
        out.push_str("     ");
        for c in 1..=m {
            out.push_str(&(c % 10).to_string());
        }
        out.push('\n');
        out
    }
}

/// Renders two grids side by side with a label row (Figure 2's
/// before/after presentation).
pub fn render_pair(left: &Grid, left_label: &str, right: &Grid, right_label: &str) -> String {
    let l_lines: Vec<String> = left.render().lines().map(String::from).collect();
    let r_lines: Vec<String> = right.render().lines().map(String::from).collect();
    let l_width = l_lines
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(0)
        .max(left_label.len());
    let rows = l_lines.len().max(r_lines.len());
    let mut out = format!("{left_label:<l_width$}   {right_label}\n");
    for i in 0..rows {
        let l = l_lines.get(i).map(String::as_str).unwrap_or("");
        let r = r_lines.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{l:<l_width$}   {r}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(sig: &[usize], l: usize) -> Grid {
        Grid::new(OrderedSignature::from_signature(sig), l)
    }

    #[test]
    fn diagonal_height_descends() {
        let g = grid(&[0, 0, 0, 0], 5);
        assert_eq!(g.diagonal_height(1), 4);
        assert_eq!(g.diagonal_height(4), 1);
        assert_eq!(g.diagonal_height(5), 0);
        assert_eq!(g.diagonal_height(9), 0);
    }

    #[test]
    fn render_marks_column_reaching_diagonal() {
        // ℓ = 4, sig (3, 0, 0): column 1 shaded to height 3 = ℓ − 1 → '*'.
        let g = grid(&[3, 0, 0], 4);
        let art = g.render();
        assert!(art.contains('*'), "expected diagonal hit:\n{art}");
        // Empty columns keep an unshaded diagonal marker.
        assert!(art.contains('/'), "expected empty diagonal cells:\n{art}");
    }

    #[test]
    fn render_has_one_row_per_height() {
        let g = grid(&[2, 1], 4);
        let art = g.render();
        // heights 3, 2, 1 + baseline + indices = 5 lines
        assert_eq!(art.lines().count(), 5, "{art}");
    }

    #[test]
    fn pair_rendering_aligns_labels() {
        let a = grid(&[2, 1], 3);
        let b = grid(&[2, 2], 3);
        let art = render_pair(&a, "before", &b, "after");
        assert!(art.lines().next().unwrap().contains("before"));
        assert!(art.lines().next().unwrap().contains("after"));
    }

    #[test]
    fn zero_grid_renders_baseline_only_plus_diagonal_rows() {
        let g = grid(&[], 0);
        let art = g.render();
        assert!(art.contains('+'));
    }
}
