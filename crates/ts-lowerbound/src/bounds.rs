//! Closed-form space bounds from the paper.

/// Theorem 1.1: a long-lived timestamp object with non-deterministic
/// solo-termination uses at least `n/6 − 1` registers.
pub fn longlived_lower_bound(n: usize) -> f64 {
    n as f64 / 6.0 - 1.0
}

/// The integral form of [`longlived_lower_bound`] used in the proof:
/// a `(3, ⌊n/2⌋)`-configuration covers at least `⌊n/6⌋` registers.
pub fn longlived_lower_bound_int(n: usize) -> usize {
    n / 6
}

/// Theorem 1.2: a one-shot timestamp object uses at least
/// `√(2n) − log n − O(1)` registers (constant taken as 2, matching the
/// proof's `m − log n − 2`).
pub fn oneshot_lower_bound(n: usize) -> f64 {
    ((2 * n) as f64).sqrt() - (n as f64).log2() - 2.0
}

/// The grid width `m = ⌊√(2n)⌋` of the Section 4 construction.
pub fn covering_grid_width(n: usize) -> usize {
    ((2 * n) as f64).sqrt().floor() as usize
}

/// Section 5: the simple one-shot algorithm uses `⌈n/2⌉` registers.
pub fn simple_upper_bound(n: usize) -> usize {
    n.div_ceil(2)
}

/// Theorem 1.3: Algorithm 4 uses `⌈2√M⌉` registers for `M` invocations
/// (the least `m` with `m² ≥ 4M`).
pub fn bounded_upper_bound(m_calls: usize) -> usize {
    let target = 4u128 * m_calls as u128;
    let mut m = (target as f64).sqrt() as u128;
    while m * m < target {
        m += 1;
    }
    while m > 0 && (m - 1) * (m - 1) >= target {
        m -= 1;
    }
    m as usize
}

/// The long-lived upper bound we implement (collect-max): `n` registers.
/// (Ellen–Fatourou–Ruppert 2008 achieve `n − 1`; see DESIGN.md §5.)
pub fn longlived_upper_bound(n: usize) -> usize {
    n
}

/// The `n − 1` bound of the EFR algorithm the paper cites, for table
/// comparison columns.
pub fn efr_longlived_upper_bound(n: usize) -> usize {
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longlived_bounds_bracket_each_other() {
        for n in [6, 60, 600, 6000] {
            let lb = longlived_lower_bound(n);
            let ub = longlived_upper_bound(n) as f64;
            assert!(lb <= ub, "n={n}");
            assert!(lb >= 0.0, "n={n}");
        }
        assert!(longlived_lower_bound(60) > 0.0);
    }

    #[test]
    fn oneshot_bounds_bracket_each_other() {
        for n in [16, 64, 256, 1024, 65536] {
            let lb = oneshot_lower_bound(n);
            let ub = bounded_upper_bound(n) as f64;
            assert!(lb <= ub, "n={n}: {lb} > {ub}");
        }
    }

    #[test]
    fn oneshot_gap_versus_longlived_opens_with_n() {
        // The space gap the paper establishes: Θ(n) long-lived versus
        // Θ(√n) one-shot. Check the ratio grows.
        let ratio = |n: usize| longlived_upper_bound(n) as f64 / bounded_upper_bound(n) as f64;
        assert!(ratio(10_000) > ratio(100));
        assert!(ratio(10_000) > 10.0);
    }

    #[test]
    fn bounded_upper_bound_matches_formula() {
        assert_eq!(bounded_upper_bound(16), 8);
        assert_eq!(bounded_upper_bound(100), 20);
        assert_eq!(bounded_upper_bound(1), 2);
    }

    #[test]
    fn grid_width_is_floor_sqrt_2n() {
        assert_eq!(covering_grid_width(8), 4);
        assert_eq!(covering_grid_width(50), 10);
        assert_eq!(covering_grid_width(2), 2);
    }

    #[test]
    fn simple_upper_bound_is_half_rounded_up() {
        assert_eq!(simple_upper_bound(7), 4);
        assert_eq!(simple_upper_bound(8), 4);
    }

    #[test]
    fn efr_bound_is_n_minus_one() {
        assert_eq!(efr_longlived_upper_bound(10), 9);
        assert_eq!(efr_longlived_upper_bound(0), 0);
    }
}
