//! Covering-argument machinery and executable lower-bound constructions.
//!
//! The paper's lower bounds (Theorems 1.1 and 1.2) are proved by
//! *covering arguments* (Burns–Lynch style): an adversary builds an
//! execution in which many processes are poised to write ("cover")
//! distinct registers, so the registers must exist. The proofs are
//! statements about all algorithms, but their constructions are
//! *effective procedures* given a deterministic algorithm: run a process
//! solo until it is about to write outside the protected set, perform
//! block-writes to obliterate traces, repeat.
//!
//! This crate makes the machinery concrete:
//!
//! - [`bounds`] — the closed-form bound functions of the theorems;
//! - [`signature`] — signatures, ordered signatures,
//!   `(3,k)`-configurations, `ℓ`-constrained / `(j,k)`-full predicates
//!   (Sections 3–4);
//! - [`grid`] — the geometric grid representation of Figures 1–2, with
//!   ASCII rendering;
//! - [`lemma21`] — an executable analogue of Lemma 2.1 (Ellen, Fatourou,
//!   Ruppert): decide which of two processes can be forced to write
//!   outside a covered set;
//! - [`lemma41`] — the full Lemma 4.1 induction: force all but one idle
//!   process to cover registers outside the protected set, via two
//!   block-writes and truncated solo chains;
//! - [`oneshot`] — the Section 4 construction, run against our one-shot
//!   model algorithms, producing real `(j,k)`-full configurations and the
//!   Figure 1/2 artifacts;
//! - [`longlived`] — the Lemma 3.1/3.2 construction for long-lived
//!   algorithms, producing `(3,k)`-configurations.
//!
//! # Example
//!
//! ```
//! use ts_core::model::BoundedModel;
//! use ts_lowerbound::oneshot::OneShotConstruction;
//!
//! let report = OneShotConstruction::run(BoundedModel::new(16));
//! assert!(report.final_covered >= 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod grid;
pub mod lemma21;
pub mod lemma41;
pub mod longlived;
pub mod oneshot;
pub mod signature;
