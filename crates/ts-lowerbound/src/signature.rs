//! Signatures, ordered signatures, and the fullness predicates of
//! Sections 3–4.

/// The signature `sig(C) = (c_1, ..., c_m)`: per register, the number of
/// processes covering it (Section 3).
pub type Signature = Vec<usize>;

/// The ordered signature `ordSig(C)`: the signature's entries sorted
/// non-increasingly (Section 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderedSignature {
    entries: Vec<usize>,
}

impl OrderedSignature {
    /// Orders a signature (non-increasing).
    pub fn from_signature(sig: &[usize]) -> Self {
        let mut entries = sig.to_vec();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        Self { entries }
    }

    /// The sorted entries `s_1 ≥ s_2 ≥ ...` (0-indexed storage).
    pub fn entries(&self) -> &[usize] {
        &self.entries
    }

    /// `s_c` with the paper's 1-based indexing; 0 beyond the width.
    pub fn s(&self, c: usize) -> usize {
        assert!(c >= 1, "ordered signatures are 1-indexed");
        self.entries.get(c - 1).copied().unwrap_or(0)
    }

    /// Number of columns (registers).
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// `ℓ`-constrained: `s_c ≤ ℓ − c` for every `1 ≤ c ≤ ℓ`.
    pub fn is_constrained(&self, l: usize) -> bool {
        (1..=l).all(|c| self.s(c) <= l.saturating_sub(c))
    }

    /// `(j, k)`-full: at least `j` registers each covered by ≥ `k`
    /// processes — in ordered form, `s_j ≥ k`.
    pub fn is_full(&self, j: usize, k: usize) -> bool {
        j >= 1 && self.s(j) >= k
    }

    /// The first column `j` that reaches the stepped diagonal of an
    /// `ℓ`-grid, i.e. the least `j` with `s_j ≥ ℓ − j` (Figure 1).
    pub fn diagonal_column(&self, l: usize) -> Option<usize> {
        (1..=self.width().max(l)).find(|&j| self.s(j) >= l.saturating_sub(j) && self.s(j) > 0)
    }

    /// Total number of covering processes `Σ s_c`.
    pub fn total(&self) -> usize {
        self.entries.iter().sum()
    }

    /// Number of registers covered at least once.
    pub fn covered(&self) -> usize {
        self.entries.iter().filter(|&&s| s > 0).count()
    }
}

/// Whether `sig` is a `(3, k)`-signature: `Σ c_i = k` and every
/// `c_i ≤ 3` (Section 3). Returns `k`.
pub fn as_3k_configuration(sig: &[usize]) -> Option<usize> {
    if sig.iter().all(|&c| c <= 3) {
        Some(sig.iter().sum())
    } else {
        None
    }
}

/// `R3(C)`: the registers whose signature entry equals 3.
pub fn r3(sig: &[usize]) -> Vec<usize> {
    sig.iter()
        .enumerate()
        .filter_map(|(i, &c)| (c == 3).then_some(i))
        .collect()
}

/// A set of `j` register indices each covered by at least `k` processes
/// (a witness for `(j, k)`-fullness), taking the most-covered registers
/// first. `None` if no such set exists.
pub fn full_register_set(sig: &[usize], j: usize, k: usize) -> Option<Vec<usize>> {
    let mut indexed: Vec<(usize, usize)> = sig.iter().copied().enumerate().collect();
    indexed.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let chosen: Vec<usize> = indexed
        .into_iter()
        .take_while(|&(_, c)| c >= k)
        .map(|(i, _)| i)
        .take(j)
        .collect();
    (chosen.len() == j).then_some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_signature_sorts_descending() {
        let o = OrderedSignature::from_signature(&[1, 3, 0, 2]);
        assert_eq!(o.entries(), &[3, 2, 1, 0]);
        assert_eq!(o.s(1), 3);
        assert_eq!(o.s(4), 0);
        assert_eq!(o.s(9), 0); // beyond width
        assert_eq!(o.total(), 6);
        assert_eq!(o.covered(), 3);
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn s_zero_panics() {
        let o = OrderedSignature::from_signature(&[1]);
        let _ = o.s(0);
    }

    #[test]
    fn constrained_matches_definition() {
        // ℓ = 4: need s_1 ≤ 3, s_2 ≤ 2, s_3 ≤ 1, s_4 ≤ 0.
        assert!(OrderedSignature::from_signature(&[3, 2, 1, 0]).is_constrained(4));
        assert!(!OrderedSignature::from_signature(&[4, 0, 0, 0]).is_constrained(4));
        assert!(!OrderedSignature::from_signature(&[3, 2, 1, 1]).is_constrained(4));
        // Vacuous for ℓ = 0.
        assert!(OrderedSignature::from_signature(&[]).is_constrained(0));
    }

    #[test]
    fn fullness_matches_definition() {
        let o = OrderedSignature::from_signature(&[2, 5, 3]);
        // ordered: 5, 3, 2
        assert!(o.is_full(1, 5));
        assert!(o.is_full(2, 3));
        assert!(o.is_full(3, 2));
        assert!(!o.is_full(2, 4));
        assert!(!o.is_full(0, 1)); // j must be ≥ 1
    }

    #[test]
    fn diagonal_column_finds_figure1_column() {
        // ℓ = 5 grid; ordered sig (2,2,2,0,...): s_3 = 2 ≥ 5 − 3.
        let o = OrderedSignature::from_signature(&[2, 2, 2, 0, 0]);
        assert_eq!(o.diagonal_column(5), Some(3));
        // A tall first column reaches immediately: s_1 = 4 ≥ 5 − 1.
        let o = OrderedSignature::from_signature(&[4, 0, 0, 0, 0]);
        assert_eq!(o.diagonal_column(5), Some(1));
        // Nothing covered: no column.
        let o = OrderedSignature::from_signature(&[0, 0]);
        assert_eq!(o.diagonal_column(5), None);
    }

    #[test]
    fn three_k_configuration_detection() {
        assert_eq!(as_3k_configuration(&[3, 2, 0, 1]), Some(6));
        assert_eq!(as_3k_configuration(&[4, 0]), None);
        assert_eq!(as_3k_configuration(&[]), Some(0));
    }

    #[test]
    fn r3_finds_triple_covered_registers() {
        assert_eq!(r3(&[3, 1, 3, 0]), vec![0, 2]);
        assert!(r3(&[2, 2]).is_empty());
    }

    #[test]
    fn full_register_set_picks_witnesses() {
        let sig = [1, 4, 2, 4];
        assert_eq!(full_register_set(&sig, 2, 4), Some(vec![1, 3]));
        assert_eq!(full_register_set(&sig, 3, 2), Some(vec![1, 3, 2]));
        assert_eq!(full_register_set(&sig, 3, 4), None);
    }
}
