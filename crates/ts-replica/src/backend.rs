//! [`QuorumBackend`]: the ABD-replicated
//! [`RegisterBackend`].
//!
//! Plugs the cluster into every generic seam upstream: a
//! `RegisterArray<u64, QuorumBackend>` scans replicated registers, a
//! `CollectMax<QuorumBackend>` issues timestamps whose every register
//! access is a quorum protocol run, `FcfsLock::<QuorumBackend>` takes
//! its doorway over the modelled network. Registers created inside a
//! [`with_cluster`](crate::with_cluster) scope join that cluster (and
//! its fault plan); registers created outside get a private fault-free
//! `f = 1` cluster each.
//!
//! # Contract mapping
//!
//! The backend's [ordering contract](ts_register::backend) maps onto
//! quorum intersection instead of hardware atomics:
//!
//! * **Per-register coherence** — replica stamps never regress (the
//!   armed monotonicity invariant) and every read returns a quorum
//!   maximum after read-repair, so the values a client sees never move
//!   backwards.
//! * **Publication** — a write acks only after `f + 1` replicas hold
//!   it; every later read quorum intersects that set. The
//!   happens-before edge rides the replica locks.
//! * **Stamp semantics** — stamps are packed `(seq, writer)` pairs:
//!   distinct writes of one register never share a stamp, and equal
//!   stamps mean the same write. `u64` order equals pair order.

use std::marker::PhantomData;
use std::sync::Arc;

use ts_register::{BackendRegister, Packable, Register, RegisterBackend, Stamp, Stamped};

use crate::cluster::{ambient_cluster, Cluster, ClusterConfig, Unavailable};

/// Backend marker: quorum-replicated registers over the modelled
/// network (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuorumBackend;

impl<T: Packable> RegisterBackend<T> for QuorumBackend {
    type Reg = QuorumRegister<T>;

    const NAME: &'static str = "quorum";
}

/// One ABD-replicated register: a register id on a shared
/// [`Cluster`], read and written through quorum protocol runs.
#[derive(Debug)]
pub struct QuorumRegister<T> {
    cluster: Arc<Cluster>,
    reg: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Packable> QuorumRegister<T> {
    /// The cluster this register is replicated on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The register's id within its cluster.
    pub fn id(&self) -> u32 {
        self.reg
    }

    /// Fallible read: the quorum value, or [`Unavailable`] once the
    /// cluster's step deadline expires. The infallible
    /// [`Register::read`] seam panics with the same diagnosis instead
    /// — generic callers that can't handle failure get a crisp
    /// post-mortem rather than a hang.
    pub fn try_read(&self) -> Result<T, Unavailable> {
        Ok(T::unpack(self.cluster.try_abd_read(self.reg)?.1))
    }

    /// Fallible write; see [`QuorumRegister::try_read`].
    pub fn try_write(&self, value: T) -> Result<(), Unavailable> {
        self.cluster.try_abd_write(self.reg, value.pack())?;
        Ok(())
    }
}

impl<T: Packable> BackendRegister<T> for QuorumRegister<T> {
    fn with_initial(initial: T) -> Self {
        let cluster = ambient_cluster().unwrap_or_else(|| Cluster::new(ClusterConfig::new(1)));
        let reg = cluster.alloc_register(initial.pack());
        Self {
            cluster,
            reg,
            _marker: PhantomData,
        }
    }

    fn read_stamped(&self) -> Stamped<T> {
        let (stamp, word) = self.cluster.abd_read(self.reg);
        Stamped {
            value: T::unpack(word),
            stamp: stamp.as_stamp(),
        }
    }

    fn stamp(&self) -> Stamp {
        // A full quorum read (including repair): two equal stamps must
        // mean the scan saw the same durable write.
        self.cluster.abd_read(self.reg).0.as_stamp()
    }

    fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let value = T::unpack(self.cluster.abd_read(self.reg).1);
        f(&value)
    }
}

impl<T: Packable> Register<T> for QuorumRegister<T> {
    fn read(&self) -> T {
        T::unpack(self.cluster.abd_read(self.reg).1)
    }

    fn write(&self, value: T) {
        self.cluster.abd_write(self.reg, value.pack());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::with_cluster;

    #[test]
    fn standalone_register_round_trips() {
        let reg = QuorumRegister::<u64>::with_initial(3);
        assert_eq!(reg.read(), 3);
        assert_eq!(reg.stamp(), Stamp::INITIAL);
        reg.write(9);
        let s = reg.read_stamped();
        assert_eq!(s.value, 9);
        assert!(s.stamp > Stamp::INITIAL);
        assert_eq!(reg.read_with(|v| v + 1), 10);
    }

    #[test]
    fn scoped_registers_share_the_ambient_cluster() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let (a, b) = with_cluster(&cluster, || {
            (
                QuorumRegister::<u64>::with_initial(0),
                QuorumRegister::<bool>::with_initial(false),
            )
        });
        assert!(Arc::ptr_eq(a.cluster(), &cluster));
        assert!(Arc::ptr_eq(b.cluster(), &cluster));
        assert_eq!(cluster.registers(), 2);
        a.write(5);
        b.write(true);
        assert_eq!((a.read(), b.read()), (5, true));
        assert_eq!(cluster.replicas(), 5);
    }

    #[test]
    fn try_ops_surface_unavailable_instead_of_spinning() {
        use crate::cluster::RestartMode;
        let cluster = Cluster::new(ClusterConfig::new(1).with_deadline(256));
        let reg = with_cluster(&cluster, || QuorumRegister::<u64>::with_initial(1));
        cluster.crash(0);
        cluster.crash(2);
        let err = reg.try_write(9).expect_err("majority down");
        assert_eq!(err.crashed, vec![0, 2]);
        cluster.restart(0, RestartMode::Retain);
        reg.try_write(9).expect("quorum back");
        assert_eq!(reg.try_read().expect("readable"), 9);
    }

    #[test]
    fn backend_satisfies_the_generic_contract() {
        fn exercise<B: RegisterBackend<u64>>() {
            let reg = B::Reg::with_initial(0);
            assert_eq!(reg.stamp(), Stamp::INITIAL);
            reg.write(5);
            let s = reg.read_stamped();
            assert_eq!(s.value, 5);
            assert_ne!(s.stamp, Stamp::INITIAL);
            assert_eq!(Register::read(&reg), 5);
        }
        exercise::<QuorumBackend>();
    }
}
