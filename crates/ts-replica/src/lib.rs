//! Quorum-replicated register backend over a fault-injecting modelled
//! network.
//!
//! The paper's algorithms are written against abstract atomic MWMR
//! registers; every backend so far realized them with hardware atomics
//! in one address space. This crate realizes them with **replication**:
//! a [`QuorumBackend`] register is `2f + 1` in-process
//! [`Replica`]s running the ABD majority protocol, every message
//! flowing through a seeded, fault-injecting [`Router`] — delay,
//! reorder, drop, duplicate, partition/heal — so the same `CollectMax`
//! / `RegisterArray` / lock algorithms run unchanged on top of an
//! unreliable network, and their guarantees can be tested *under*
//! those faults.
//!
//! # Layers
//!
//! | module | what lives there |
//! |---|---|
//! | [`proto`] | [`WriteStamp`] `(seq, writer)` pairs, the flat [`Message`] envelope |
//! | [`net`] | [`Router`]: seeded [`FaultPlan`] knobs, partitions, the per-delivery step hook |
//! | [`replica`] | [`Replica`]: per-register `(stamp, word)` slots, handlers, the armed monotonicity invariant |
//! | [`cluster`] | [`Cluster`]: ABD reads/writes, retransmission, [`with_cluster`] scoping; [`QuorumTs`], the message-step timestamp object |
//! | [`backend`] | [`QuorumBackend`] / [`QuorumRegister`]: the [`RegisterBackend`](ts_register::RegisterBackend) seam |
//! | [`model`] | [`QuorumModel`] / [`QuorumMachine`]: the model twin (one register per replica, one step per message) |
//! | [`workload`] | [`QuorumTsTarget`], [`ReplicatedCollectMax`]: grid / replay adapters |
//!
//! # The model ↔ real loop, now over messages
//!
//! The repo's loop — model-check an algorithm, minimize the violating
//! schedule, replay it against the real object under a step barrier —
//! extends to the network: [`QuorumModel`]'s steps are message
//! deliveries, so an explorer counterexample (e.g. the non-intersecting
//! write quorum of [`QuorumModel::broken`]) replays step-for-step
//! against real replicas through [`QuorumTs::get_ts_paused`], and the
//! router's [step hook](Router::set_step_hook) puts arbitrary cluster
//! traffic under the same [`StepGate`](ts_core::workload::StepGate)
//! pacing.
//!
//! # Example
//!
//! ```
//! use ts_replica::{with_cluster, Cluster, ClusterConfig, FaultPlan, QuorumBackend};
//! use ts_core::{CollectMax, LongLivedTimestamp, Timestamp};
//!
//! // A lossy, reordering network, seeded for reproducibility.
//! let plan = FaultPlan { seed: 7, drop_permille: 100, delay_max: 3, reorder: true, ..FaultPlan::default() };
//! let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
//! let ts = with_cluster(&cluster, || CollectMax::<QuorumBackend>::with_backend(2));
//! let a = ts.get_ts(0).unwrap();
//! let b = ts.get_ts(1).unwrap();
//! assert!(Timestamp::compare(&a, &b), "still a correct timestamp object");
//! assert!(cluster.quorum_rounds() > 0, "every access ran the quorum protocol");
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod model;
pub mod net;
pub mod proto;
pub mod replica;
pub mod workload;

pub use backend::{QuorumBackend, QuorumRegister};
pub use cluster::{
    with_cluster, Cluster, ClusterConfig, QuorumTs, RestartMode, Unavailable, DEFAULT_DEADLINE,
};
pub use model::{QuorumMachine, QuorumModel, BOT};
pub use net::{FaultPlan, NetStats, Router, StepHook};
pub use proto::{Message, MsgKind, WriteStamp};
pub use replica::Replica;
pub use workload::{
    QuorumTsCrashTarget, QuorumTsTarget, ReplicatedCollectMax, ReplicatedTryRegisters,
};
