//! One quorum replica: per-register `(stamp, word)` storage plus the
//! message handlers.
//!
//! A replica is passive — it owns no thread. Whoever pumps the router
//! (or takes the fault-free direct path) applies `Replica::handle`
//! inline under the replica's own lock. Handlers are pure state
//! transitions: request in, reply out.
//!
//! # The monotonic-register invariant
//!
//! The load-bearing safety property (the `MonotoneRegister` of
//! `dist-register`, and the reason ABD read-repair is linearizable):
//! **a replica's stored stamp for a register never decreases**. Every
//! install re-checks it via debug-independent
//! runtime assertions — not `debug_assert!` — so stress tests and
//! fault schedules keep it armed in release builds too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::proto::{Message, MsgKind, WriteStamp};

/// Per-register replica state: the highest-stamped write seen.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    pub(crate) stamp: WriteStamp,
    pub(crate) word: u64,
}

/// One of the cluster's `2f + 1` storage nodes.
///
/// Holds a `(stamp, word)` slot per register and answers
/// [`Message`]s; see the module docs for the handler semantics and the
/// armed monotonicity invariant.
pub struct Replica {
    id: u32,
    slots: Mutex<Vec<Slot>>,
    /// Writes/installs that actually advanced a slot.
    installs: AtomicU64,
    /// Stale writes ignored (incoming stamp not above stored).
    stale: AtomicU64,
    /// State wipes suffered (crash-with-state-loss restarts).
    wipes: AtomicU64,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("registers", &self.slots.lock().expect("replica lock").len())
            .field("installs", &self.installs.load(Ordering::Relaxed))
            .finish()
    }
}

impl Replica {
    /// Creates replica `id` with no registers yet.
    pub(crate) fn new(id: u32) -> Self {
        Self {
            id,
            slots: Mutex::new(Vec::new()),
            installs: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            wipes: AtomicU64::new(0),
        }
    }

    /// This replica's node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Creates register `reg` seeded with `word` at
    /// [`WriteStamp::INITIAL`], padding any gap with zeroed slots (a
    /// concurrent allocator of a lower id will overwrite its own pad
    /// before any traffic reaches it).
    pub(crate) fn init_register(&self, reg: u32, word: u64) {
        let mut slots = self.slots.lock().expect("replica lock");
        while slots.len() <= reg as usize {
            slots.push(Slot {
                stamp: WriteStamp::INITIAL,
                word: 0,
            });
        }
        slots[reg as usize] = Slot {
            stamp: WriteStamp::INITIAL,
            word,
        };
    }

    /// Crash-with-state-loss: resets every slot to `(INITIAL, 0)`, as
    /// if the replica restarted from an empty disk.
    ///
    /// The monotonic-register invariant is **per incarnation**: it
    /// constrains every handler step, and a wipe starts a new
    /// incarnation with a fresh baseline. Cluster-level monotonicity
    /// across the wipe is restored by the rejoin resync sweep
    /// ([`Cluster::restart`](crate::Cluster::restart)), which runs
    /// through the ordinary `Write` handler — so the invariant stays
    /// armed while the replica catches back up.
    pub(crate) fn wipe(&self) {
        let mut slots = self.slots.lock().expect("replica lock");
        for slot in slots.iter_mut() {
            *slot = Slot {
                stamp: WriteStamp::INITIAL,
                word: 0,
            };
        }
        self.wipes.fetch_add(1, Ordering::Relaxed);
    }

    /// Times this replica's state has been wiped by a crash.
    pub fn wipes(&self) -> u64 {
        self.wipes.load(Ordering::Relaxed)
    }

    /// The stored `(stamp, word)` for `reg` — durability probes in
    /// tests look here.
    pub fn stored(&self, reg: u32) -> (WriteStamp, u64) {
        let slots = self.slots.lock().expect("replica lock");
        let slot = slots[reg as usize];
        (slot.stamp, slot.word)
    }

    /// Installs that advanced a slot (monotone steps taken).
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }

    /// Stale writes ignored without touching the slot.
    pub fn stale_writes(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Applies one request and returns the reply (addressed back to
    /// `msg.from`, echoing `msg.op`). Panics on reply kinds — replicas
    /// never receive replies.
    pub(crate) fn handle(&self, msg: &Message) -> Message {
        debug_assert_eq!(msg.to, self.id, "misrouted message");
        let mut slots = self.slots.lock().expect("replica lock");
        let slot = &mut slots[msg.reg as usize];
        let before = slot.stamp;
        let reply = match msg.kind {
            MsgKind::ReadQuery => Message {
                kind: MsgKind::ReadReply,
                seq: slot.stamp.seq,
                writer: slot.stamp.writer,
                word: slot.word,
                expected: 0,
                ..reply_envelope(self.id, msg)
            },
            MsgKind::Write => {
                // Install iff strictly newer; always ack — a stale ack
                // still means "my stamp is >= yours", which is all the
                // writer needs for durability.
                if msg.stamp() > slot.stamp {
                    slot.stamp = msg.stamp();
                    slot.word = msg.word;
                    self.installs.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                }
                Message {
                    kind: MsgKind::WriteAck,
                    seq: slot.stamp.seq,
                    writer: slot.stamp.writer,
                    word: 0,
                    expected: 0,
                    ..reply_envelope(self.id, msg)
                }
            }
            MsgKind::Install => {
                // Conditional install (the QuorumTs CAS step): land the
                // new word only if the stored word still equals
                // `expected`; reply with the *prior* word either way.
                let prior = slot.word;
                if prior == msg.expected && msg.word > prior {
                    slot.stamp = WriteStamp {
                        seq: msg.seq,
                        writer: msg.writer,
                    };
                    slot.word = msg.word;
                    self.installs.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                }
                Message {
                    kind: MsgKind::InstallReply,
                    seq: slot.stamp.seq,
                    writer: slot.stamp.writer,
                    word: prior,
                    expected: 0,
                    ..reply_envelope(self.id, msg)
                }
            }
            MsgKind::ReadReply | MsgKind::WriteAck | MsgKind::InstallReply => {
                panic!("replica {} received reply kind {:?}", self.id, msg.kind)
            }
        };
        // The armed invariant: no handler may regress a stored stamp.
        assert!(
            slot.stamp >= before,
            "monotonic-register invariant violated on replica {}: \
             register {} regressed {} -> {}",
            self.id,
            msg.reg,
            before,
            slot.stamp,
        );
        reply
    }
}

fn reply_envelope(id: u32, req: &Message) -> Message {
    Message {
        kind: req.kind, // overwritten by the caller
        op: req.op,
        from: id,
        to: req.from,
        reg: req.reg,
        seq: 0,
        writer: 0,
        word: 0,
        expected: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(reg: u32, seq: u32, writer: u32, word: u64) -> Message {
        Message {
            kind: MsgKind::Write,
            op: 1,
            from: Message::CLIENT_BASE,
            to: 0,
            reg,
            seq,
            writer,
            word,
            expected: 0,
        }
    }

    #[test]
    fn reads_echo_the_stored_pair() {
        let r = Replica::new(0);
        r.init_register(0, 7);
        let reply = r.handle(&Message {
            kind: MsgKind::ReadQuery,
            op: 9,
            from: Message::CLIENT_BASE + 2,
            to: 0,
            reg: 0,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        });
        assert_eq!(reply.kind, MsgKind::ReadReply);
        assert_eq!(reply.op, 9);
        assert_eq!(reply.to, Message::CLIENT_BASE + 2);
        assert_eq!((reply.stamp(), reply.word), (WriteStamp::INITIAL, 7));
    }

    #[test]
    fn writes_install_only_forward() {
        let r = Replica::new(0);
        r.init_register(0, 0);
        r.handle(&write(0, 2, 1, 22));
        assert_eq!(r.stored(0), (WriteStamp { seq: 2, writer: 1 }, 22));
        // Older stamp: ignored, but still acked with the newer stamp.
        let ack = r.handle(&write(0, 1, 9, 11));
        assert_eq!(ack.kind, MsgKind::WriteAck);
        assert_eq!(ack.stamp(), WriteStamp { seq: 2, writer: 1 });
        assert_eq!(r.stored(0), (WriteStamp { seq: 2, writer: 1 }, 22));
        // Same seq, higher writer: the tiebreak installs.
        r.handle(&write(0, 2, 3, 33));
        assert_eq!(r.stored(0), (WriteStamp { seq: 2, writer: 3 }, 33));
        assert_eq!(r.installs(), 2);
        assert_eq!(r.stale_writes(), 1);
    }

    #[test]
    fn installs_are_conditional_on_the_expected_word() {
        let r = Replica::new(1);
        r.init_register(0, 0);
        let install = Message {
            kind: MsgKind::Install,
            op: 5,
            from: Message::CLIENT_BASE,
            to: 1,
            reg: 0,
            seq: 1,
            writer: 0,
            word: 1,
            expected: 0,
        };
        let reply = r.handle(&install);
        assert_eq!(reply.kind, MsgKind::InstallReply);
        assert_eq!(reply.word, 0, "reply carries the prior word");
        assert_eq!(r.stored(0).1, 1);
        // Replayed duplicate: expected stale, slot untouched.
        let reply = r.handle(&install);
        assert_eq!(reply.word, 1);
        assert_eq!(r.stored(0).1, 1);
        assert_eq!(r.installs(), 1);
    }

    #[test]
    fn wipe_starts_a_fresh_incarnation_with_the_invariant_armed() {
        let r = Replica::new(0);
        r.init_register(0, 0);
        r.handle(&write(0, 5, 1, 50));
        assert_eq!(r.stored(0), (WriteStamp { seq: 5, writer: 1 }, 50));
        r.wipe();
        assert_eq!(r.wipes(), 1);
        assert_eq!(r.stored(0), (WriteStamp::INITIAL, 0));
        // A lower-than-pre-wipe stamp installs fine (new incarnation),
        // and the per-step invariant still rejects regressions after.
        r.handle(&write(0, 2, 1, 20));
        assert_eq!(r.stored(0), (WriteStamp { seq: 2, writer: 1 }, 20));
        r.handle(&write(0, 1, 1, 10));
        assert_eq!(r.stored(0).1, 20, "stale write after wipe still ignored");
    }

    #[test]
    fn duplicate_write_is_idempotent() {
        let r = Replica::new(0);
        r.init_register(0, 0);
        let msg = write(0, 1, 2, 5);
        r.handle(&msg);
        r.handle(&msg);
        assert_eq!(r.stored(0), (WriteStamp { seq: 1, writer: 2 }, 5));
        assert_eq!(r.installs(), 1);
        assert_eq!(r.stale_writes(), 1);
    }
}
