//! The wire protocol of the quorum backend: write stamps and messages.
//!
//! Grounded in `dist-register`'s ABD split (`src/abd/proto.rs` there):
//! a [`WriteStamp`] totally orders writes per register, and every
//! request/reply between a client and a replica is one flat [`Message`]
//! envelope. The shapes are deliberately concrete — named-field structs
//! and a fieldless kind enum — so the vendored serde derive covers them
//! and recorded message logs / fault schedules diff textually.
//!
//! Values travel as packed words (`u64`, the
//! [`Packable`](ts_register::Packable) encoding), so one envelope type
//! serves every register value type the backend supports.

use std::fmt;

use ts_register::Stamp;

/// The ABD write stamp: a `(seq, writer)` pair ordered
/// lexicographically, exactly the `Timestamp { seqno, client_id }`
/// shape of `dist-register`'s monotonic register.
///
/// `seq` is the register-local sequence number a writer computed in its
/// query phase (`max observed + 1`); `writer` breaks ties between
/// concurrent writers that picked the same `seq`. Two distinct writes
/// of one register never share a stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WriteStamp {
    /// Register-local sequence number (majority-observed max + 1).
    pub seq: u32,
    /// Id of the writing client (the tiebreak).
    pub writer: u32,
}

impl WriteStamp {
    /// The stamp every replica holds for a register's initial value.
    pub const INITIAL: WriteStamp = WriteStamp { seq: 0, writer: 0 };

    /// The stamp a writer installs after observing `self` as the
    /// quorum maximum.
    pub fn next(self, writer: u32) -> WriteStamp {
        WriteStamp {
            seq: self.seq + 1,
            writer,
        }
    }

    /// Packs the pair into the [`Stamp`] word the register seam uses:
    /// `seq` in the high 32 bits, `writer` in the low — `u64` order
    /// equals the lexicographic pair order, and [`WriteStamp::INITIAL`]
    /// maps to [`Stamp::INITIAL`].
    pub fn as_stamp(self) -> Stamp {
        Stamp::from_raw((u64::from(self.seq) << 32) | u64::from(self.writer))
    }
}

impl fmt::Display for WriteStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.seq, self.writer)
    }
}

/// What a [`Message`] asks for or answers.
///
/// Fieldless by design (see the module docs); the payload fields live
/// in the envelope and unused ones stay zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MsgKind {
    /// Client → replica: send me your `(stamp, word)` for `reg`.
    ReadQuery,
    /// Replica → client: my current `(stamp, word)` for `reg`.
    ReadReply,
    /// Client → replica: install `(stamp, word)` into `reg` if it
    /// exceeds what you hold (an ABD phase-2 write or a read-repair
    /// write-back).
    Write,
    /// Replica → client: your write is durable here (my stamp for
    /// `reg` is now `>=` the one you sent).
    WriteAck,
    /// Client → replica: if your word for `reg` still equals
    /// `expected`, install `word` (stamped `seq`). The conditional
    /// install of the timestamp-specialized protocol
    /// ([`QuorumTs`](crate::QuorumTs)) — one atomic step per replica,
    /// mirroring the model twin's CAS.
    Install,
    /// Replica → client: the word held *before* an [`MsgKind::Install`]
    /// (equality with `expected` tells the client whether it landed).
    InstallReply,
}

/// One request or reply in flight on the modelled network.
///
/// A flat envelope: `kind` selects which payload fields are meaningful,
/// the rest stay zero. `from`/`to` are node ids — replicas are
/// `0..cluster.replicas()`, clients live above
/// [`Message::CLIENT_BASE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Message {
    /// Request/reply discriminator.
    pub kind: MsgKind,
    /// Client-minted operation id replies echo (retransmissions mint a
    /// fresh one, so stale replies are ignored by construction).
    pub op: u64,
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Register the message is about.
    pub reg: u32,
    /// Stamp sequence component (or the `Install` word's stamp).
    pub seq: u32,
    /// Stamp writer component.
    pub writer: u32,
    /// Packed value word (for `Install` requests: the *new* word; the
    /// expected word rides in `expected`).
    pub word: u64,
    /// `Install` only: the word the replica must still hold.
    pub expected: u64,
}

impl Message {
    /// Node ids at or above this are clients; below are replicas.
    pub const CLIENT_BASE: u32 = 1 << 16;

    /// The stamp carried in `seq`/`writer`.
    pub fn stamp(&self) -> WriteStamp {
        WriteStamp {
            seq: self.seq,
            writer: self.writer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_stamps_order_lexicographically() {
        let a = WriteStamp { seq: 1, writer: 9 };
        let b = WriteStamp { seq: 2, writer: 0 };
        assert!(a < b, "seq dominates");
        let c = WriteStamp { seq: 2, writer: 1 };
        assert!(b < c, "writer breaks ties");
        assert!(WriteStamp::INITIAL < a);
    }

    #[test]
    fn stamp_packing_preserves_order_and_initial() {
        assert_eq!(WriteStamp::INITIAL.as_stamp(), Stamp::INITIAL);
        let pairs = [
            WriteStamp::INITIAL,
            WriteStamp { seq: 0, writer: 3 },
            WriteStamp { seq: 1, writer: 0 },
            WriteStamp { seq: 1, writer: 7 },
            WriteStamp { seq: 9, writer: 2 },
        ];
        for w in pairs.windows(2) {
            assert!(
                w[0].as_stamp().as_u64() < w[1].as_stamp().as_u64(),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn next_bumps_seq_and_takes_the_writer() {
        let s = WriteStamp { seq: 4, writer: 2 }.next(5);
        assert_eq!(s, WriteStamp { seq: 5, writer: 5 });
    }

    #[cfg(feature = "serde")]
    #[test]
    fn messages_round_trip_byte_stably() {
        let msg = Message {
            kind: MsgKind::Install,
            op: 42,
            from: Message::CLIENT_BASE + 1,
            to: 2,
            reg: 0,
            seq: 7,
            writer: 1,
            word: 7,
            expected: 3,
        };
        let json = serde_json::to_string(&msg).expect("messages serialize");
        let back: Message = serde_json::from_str(&json).expect("messages parse");
        assert_eq!(back, msg);
        let again = serde_json::to_string(&back).expect("messages re-serialize");
        assert_eq!(again, json, "re-serialization changed bytes");
    }
}
