//! Workload adapters: the replicated objects as
//! [`WorkloadTarget`]s for the engine, the replayer and the bench grid.
//!
//! Two targets live here:
//!
//! * [`QuorumTsTarget`] — [`QuorumTs`] under the
//!   **message-step** granularity: each gated sub-step is one replica
//!   interaction, so checked-in model traces (including the broken
//!   write-quorum counterexample) replay against real replicas.
//! * [`ReplicatedCollectMax`] — a `CollectMax<QuorumBackend>` bundled
//!   with its cluster: the paper's collect-max algorithm where every
//!   register access is a quorum protocol run. Its
//!   [`service_stats`](WorkloadTarget::service_stats) snapshot merges
//!   the object's counters with the cluster's quorum counters, so
//!   bench rows show rounds-per-call and repair ratios next to
//!   throughput.

use std::sync::Arc;

use ts_core::workload::StepGate;
use ts_core::{
    CollectMax, OpHistory, ReplayGranularity, ServiceStats, Timestamp, WorkloadOp, WorkloadTarget,
    WorkloadWorker,
};

use crate::backend::QuorumBackend;
use crate::cluster::{with_cluster, Cluster, ClusterConfig, QuorumTs, RestartMode};
use crate::net::FaultPlan;

/// [`QuorumTs`] as a workload target: one slot per process, one gated
/// sub-step per replica interaction.
///
/// The broken variant keeps the same step grammar but skips the
/// per-worker timestamp-property assertion — replaying the explorer's
/// counterexample *observes* the violation (the replayer checks
/// outputs), it must not crash the worker.
#[derive(Debug)]
pub struct QuorumTsTarget {
    ts: QuorumTs,
    processes: usize,
}

impl QuorumTsTarget {
    /// Correct protocol for `processes` clients tolerating `f`
    /// failures.
    pub fn new(processes: usize, f: usize) -> Self {
        Self {
            ts: QuorumTs::new(f),
            processes,
        }
    }

    /// The broken write-quorum-of-1 variant.
    pub fn broken(processes: usize, f: usize) -> Self {
        Self {
            ts: QuorumTs::broken(f),
            processes,
        }
    }

    /// The underlying timestamp object.
    pub fn object_ref(&self) -> &QuorumTs {
        &self.ts
    }
}

struct QuorumTsWorker<'a> {
    ts: &'a QuorumTs,
    slot: usize,
    history: OpHistory<Timestamp>,
}

impl QuorumTsWorker<'_> {
    fn record(&mut self, t: Timestamp) {
        if self.ts.is_correct() {
            if let Some(p) = self.history.last() {
                assert!(
                    Timestamp::compare(&p, &t),
                    "quorum_ts violated the timestamp property: {p} !< {t}"
                );
            }
        }
        self.history.push(t);
    }
}

impl WorkloadWorker for QuorumTsWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.ts.get_ts(self.slot);
                self.record(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                std::hint::black_box(self.ts.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        std::hint::black_box(Timestamp::compare(&a, &b)),
                        "quorum_ts history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                gate.pause(); // op start
                let t = self.ts.get_ts_paused(self.slot, || gate.pause());
                self.record(t);
                WorkloadOp::GetTs
            }
            other => {
                gate.pause();
                self.step(other)
            }
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl WorkloadTarget for QuorumTsTarget {
    fn object(&self) -> &'static str {
        if self.ts.is_correct() {
            "quorum_ts"
        } else {
            "quorum_ts_broken"
        }
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.processes
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.processes, "slot {slot} out of range");
        Box::new(QuorumTsWorker {
            ts: &self.ts,
            slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = ServiceStats::default();
        self.ts.cluster().fill_stats(&mut stats);
        Some(stats)
    }
}

/// The skip-resync crash counterexample as a replayable target:
/// [`QuorumModel::crash_skip_resync`](crate::QuorumModel::crash_skip_resync)
/// mapped onto real replicas.
///
/// Client slots run the **correct** [`QuorumTs`] protocol at
/// message-step granularity — the bug is not in the quorums. The last
/// slot is the model's crash adversary: its two gated sub-steps are
/// the real lifecycle calls, [`Cluster::crash`] on the victim replica
/// and [`Cluster::restart_skip_resync`] with
/// [`RestartMode::Wipe`]. Replaying the minimized model trace
/// (`quorum_crash_skip_resync`) reproduces the duplicate timestamp on
/// real replica threads — the demonstration that the rejoin resync
/// sweep, not quorum intersection alone, carries recovery safety.
///
/// The adversary slot reports no timestamp
/// ([`last_ts`](WorkloadWorker::last_ts) stays `None`), so the
/// replayer's property check covers exactly the client ops; its
/// recorded model output (an environment event, not a `getTS`) never
/// matches, so cases built on this target set
/// `expect_exact_outputs: false`.
#[derive(Debug)]
pub struct QuorumTsCrashTarget {
    ts: QuorumTs,
    clients: usize,
    victim: u32,
}

impl QuorumTsCrashTarget {
    /// `clients` correct getTS processes plus one crash adversary over
    /// a cluster tolerating `f` failures. The victim is replica `f` —
    /// the register the model adversary crashes.
    pub fn new(clients: usize, f: usize) -> Self {
        Self {
            ts: QuorumTs::new(f),
            clients,
            victim: f as u32,
        }
    }

    /// The cluster under fault (wipe counters, lifecycle probes).
    pub fn cluster(&self) -> &Arc<Cluster> {
        self.ts.cluster()
    }
}

struct CrashAdversaryWorker<'a> {
    cluster: &'a Arc<Cluster>,
    victim: u32,
}

impl CrashAdversaryWorker<'_> {
    fn crash_and_amnesiac_restart(&self) {
        self.cluster.crash(self.victim);
        self.cluster
            .restart_skip_resync(self.victim, RestartMode::Wipe);
    }
}

impl WorkloadWorker for CrashAdversaryWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        self.crash_and_amnesiac_restart();
        op
    }

    fn step_gated(&mut self, _op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        // Mirrors the model adversary's step grammar: invoke, the BOT
        // write (crash-stop), the amnesiac restore (wipe, no resync).
        gate.pause(); // op start
        gate.pause();
        self.cluster.crash(self.victim);
        gate.pause();
        self.cluster
            .restart_skip_resync(self.victim, RestartMode::Wipe);
        WorkloadOp::GetTs
    }
    // Default `last_ts` (None): environment events carry no timestamp.
}

impl WorkloadTarget for QuorumTsCrashTarget {
    fn object(&self) -> &'static str {
        "quorum_ts_crash"
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.clients + 1
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot <= self.clients, "slot {slot} out of range");
        if slot == self.clients {
            return Box::new(CrashAdversaryWorker {
                cluster: self.ts.cluster(),
                victim: self.victim,
            });
        }
        Box::new(QuorumTsWorker {
            ts: &self.ts,
            slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = ServiceStats::default();
        self.ts.cluster().fill_stats(&mut stats);
        Some(stats)
    }
}

/// Raw quorum registers driven through the **fallible** client path:
/// each worker slot owns one replicated register and issues
/// [`Cluster::try_abd_write`] / [`Cluster::try_abd_read`], treating
/// [`Unavailable`](crate::Unavailable) as a counted outcome instead of
/// a panic.
///
/// This is the target for majority-loss chaos cells: the infallible
/// [`RegisterBackend`](ts_register::RegisterBackend) seam (used by
/// [`ReplicatedCollectMax`]) panics when a quorum op exhausts its
/// deadline, so any campaign that takes more than `f` replicas down
/// must drive clients that *survive* the outage. Workers keep issuing
/// through the outage; every failed op is bounded by the cluster's
/// step deadline and shows up in `quorum_unavailable` /
/// `quorum_timeouts`, and throughput recovers once a quorum heals.
pub struct ReplicatedTryRegisters {
    cluster: Arc<Cluster>,
    regs: Vec<u32>,
    label: &'static str,
}

impl ReplicatedTryRegisters {
    /// `slots` single-writer registers over a fresh cluster tolerating
    /// `f` failures, with an explicit config (chaos cells lower the
    /// step deadline so outage-phase ops fail fast).
    pub fn with_config(slots: usize, config: ClusterConfig, label: &'static str) -> Self {
        let cluster = Cluster::new(config);
        let regs = (0..slots).map(|_| cluster.alloc_register(0)).collect();
        Self {
            cluster,
            regs,
            label,
        }
    }

    /// Fault-free config with the default deadline.
    pub fn new(slots: usize, f: usize, label: &'static str) -> Self {
        Self::with_config(slots, ClusterConfig::new(f), label)
    }

    /// The cluster under fault.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }
}

impl std::fmt::Debug for ReplicatedTryRegisters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedTryRegisters")
            .field("label", &self.label)
            .field("slots", &self.regs.len())
            .finish_non_exhaustive()
    }
}

struct TryRegisterWorker<'a> {
    cluster: &'a Arc<Cluster>,
    regs: &'a [u32],
    own: usize,
    value: u64,
    rr: usize,
}

impl WorkloadWorker for TryRegisterWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs | WorkloadOp::Compare => {
                self.value += 1;
                // Unavailable is the expected outage-phase outcome; the
                // cluster counts it (quorum_unavailable) and the local
                // sequence keeps growing so post-heal writes still
                // advance the register.
                let _ = self.cluster.try_abd_write(self.regs[self.own], self.value);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                self.rr += 1;
                let reg = self.regs[self.rr % self.regs.len()];
                std::hint::black_box(self.cluster.try_abd_read(reg).ok());
                WorkloadOp::Scan
            }
        }
    }
}

impl WorkloadTarget for ReplicatedTryRegisters {
    fn object(&self) -> &'static str {
        self.label
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.regs.len()
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.regs.len(), "slot {slot} out of range");
        Box::new(TryRegisterWorker {
            cluster: &self.cluster,
            regs: &self.regs,
            own: slot,
            value: 0,
            rr: slot,
        })
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = ServiceStats::default();
        self.cluster.fill_stats(&mut stats);
        Some(stats)
    }
}

/// The collect-max timestamp object on quorum-replicated registers:
/// `CollectMax<QuorumBackend>` bundled with its [`Cluster`] so grid
/// cells can carry a fault profile and report quorum counters.
pub struct ReplicatedCollectMax {
    cluster: Arc<Cluster>,
    inner: CollectMax<QuorumBackend>,
    label: &'static str,
}

impl ReplicatedCollectMax {
    /// A fault-free replicated collect-max for `processes` slots over
    /// a cluster tolerating `f` failures. `label` names the grid cell
    /// ("replicated_f1", ...).
    pub fn new(processes: usize, f: usize, label: &'static str) -> Self {
        Self::with_plan(processes, f, label, FaultPlan::default())
    }

    /// Same, with an explicit fault plan.
    pub fn with_plan(processes: usize, f: usize, label: &'static str, plan: FaultPlan) -> Self {
        let cluster = Cluster::new(ClusterConfig::new(f).with_plan(plan));
        let inner = with_cluster(&cluster, || CollectMax::with_backend(processes));
        Self {
            cluster,
            inner,
            label,
        }
    }

    /// The cluster behind the registers (partition knobs, counters).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The wrapped collect-max object.
    pub fn inner(&self) -> &CollectMax<QuorumBackend> {
        &self.inner
    }
}

impl std::fmt::Debug for ReplicatedCollectMax {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedCollectMax")
            .field("label", &self.label)
            .field("cluster", &self.cluster)
            .finish_non_exhaustive()
    }
}

impl WorkloadTarget for ReplicatedCollectMax {
    fn object(&self) -> &'static str {
        self.label
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        self.inner.worker(slot)
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        self.inner.replay_granularity()
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = self.inner.stats();
        self.cluster.fill_stats(&mut stats);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_ts_target_steps_and_tracks_history() {
        let target = QuorumTsTarget::new(2, 1);
        assert_eq!(target.object(), "quorum_ts");
        assert_eq!(target.backend(), "quorum");
        assert_eq!(target.slots(), 2);
        assert_eq!(target.replay_granularity(), ReplayGranularity::MemoryAccess);
        let mut w = target.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        // Compare before two stamps exist substitutes a GetTs.
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        assert_eq!(w.last_ts(), Some(Timestamp::scalar(2)));
    }

    #[test]
    fn broken_target_reports_its_own_object_label() {
        let target = QuorumTsTarget::broken(2, 1);
        assert_eq!(target.object(), "quorum_ts_broken");
        let mut w = target.worker(1);
        w.step(WorkloadOp::GetTs);
        assert!(w.last_ts().is_some());
    }

    #[test]
    fn replicated_collect_max_issues_through_quorums() {
        let target = ReplicatedCollectMax::new(2, 1, "replicated_f1");
        assert_eq!(target.object(), "replicated_f1");
        assert_eq!(target.backend(), "quorum");
        let mut w = target.worker(0);
        w.step(WorkloadOp::GetTs);
        w.step(WorkloadOp::GetTs);
        drop(w);
        let stats = target.service_stats().expect("stats");
        assert_eq!(stats.calls, 2);
        assert!(
            stats.quorum_rounds > 0,
            "register traffic went through quorums: {stats:?}"
        );
        assert!(stats.rounds_per_call().expect("replicated") >= 1.0);
    }

    #[test]
    fn try_registers_survive_a_majority_outage_and_recover() {
        let config = ClusterConfig::new(1).with_deadline(512);
        let target = ReplicatedTryRegisters::with_config(2, config, "try_f1");
        assert_eq!(target.object(), "try_f1");
        assert_eq!(target.backend(), "quorum");
        let mut w = target.worker(0);
        w.step(WorkloadOp::GetTs);
        // Take a majority down: the infallible path would panic here;
        // the try path completes every op as a counted failure.
        target.cluster().crash(0);
        target.cluster().crash(2);
        w.step(WorkloadOp::GetTs);
        w.step(WorkloadOp::Scan);
        assert!(
            target.cluster().quorum_unavailable() >= 2,
            "outage ops were counted"
        );
        target.cluster().restart(0, RestartMode::Retain);
        target.cluster().restart(2, RestartMode::Wipe);
        w.step(WorkloadOp::GetTs);
        drop(w);
        // Post-heal write landed: local sequence reached 3 and the
        // register's stored word reflects the latest successful write.
        let (_, word) = target.cluster().abd_read(0);
        assert_eq!(word, 3, "writes resume after the quorum heals");
        assert!(
            target.cluster().resynced_registers() > 0,
            "the wiped replica resynced on rejoin"
        );
    }

    #[test]
    fn crash_adversary_slot_announces_three_steps_and_wipes_the_victim() {
        let target = Arc::new(QuorumTsCrashTarget::new(2, 1));
        assert_eq!(target.object(), "quorum_ts_crash");
        assert_eq!(target.slots(), 3, "two clients plus the adversary");
        let gate = Arc::new(StepGate::new());
        let t2 = Arc::clone(&target);
        let g2 = Arc::clone(&gate);
        let handle = std::thread::spawn(move || {
            let mut w = t2.worker(2);
            w.step_gated(WorkloadOp::GetTs, &g2);
            assert_eq!(w.last_ts(), None, "environment events have no output");
            g2.finish();
        });
        // Op start + crash + amnesiac restart = 3 announced sub-steps,
        // matching the model adversary's invoke + two writes.
        for step in 1..=3 {
            gate.release_next(std::time::Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("release {step}: {e}"));
        }
        handle.join().expect("adversary thread");
        let cluster = target.cluster();
        assert_eq!(cluster.replica(1).wipes(), 1, "victim is replica f = 1");
        assert!(
            cluster.router().crashed().is_empty(),
            "the adversary restarts what it crashes"
        );
        assert_eq!(cluster.resynced_registers(), 0, "resync was skipped");
    }

    #[test]
    fn gated_quorum_ts_announces_message_steps() {
        let target = Arc::new(QuorumTsTarget::new(1, 1));
        let gate = Arc::new(StepGate::new());
        let t2 = Arc::clone(&target);
        let g2 = Arc::clone(&gate);
        let handle = std::thread::spawn(move || {
            let mut w = t2.worker(0);
            w.step_gated(WorkloadOp::GetTs, &g2);
            g2.finish();
        });
        // Op start + 2 reads + 2 installs = 5 announced sub-steps.
        for step in 1..=5 {
            gate.release_next(std::time::Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("release {step}: {e}"));
        }
        handle.join().expect("worker thread");
        let progress = gate.progress();
        assert_eq!(progress.announced, 5, "one pause per message step");
        assert!(progress.done);
    }
}
