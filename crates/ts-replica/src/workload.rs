//! Workload adapters: the replicated objects as
//! [`WorkloadTarget`]s for the engine, the replayer and the bench grid.
//!
//! Two targets live here:
//!
//! * [`QuorumTsTarget`] — [`QuorumTs`] under the
//!   **message-step** granularity: each gated sub-step is one replica
//!   interaction, so checked-in model traces (including the broken
//!   write-quorum counterexample) replay against real replicas.
//! * [`ReplicatedCollectMax`] — a `CollectMax<QuorumBackend>` bundled
//!   with its cluster: the paper's collect-max algorithm where every
//!   register access is a quorum protocol run. Its
//!   [`service_stats`](WorkloadTarget::service_stats) snapshot merges
//!   the object's counters with the cluster's quorum counters, so
//!   bench rows show rounds-per-call and repair ratios next to
//!   throughput.

use std::sync::Arc;

use ts_core::workload::StepGate;
use ts_core::{
    CollectMax, OpHistory, ReplayGranularity, ServiceStats, Timestamp, WorkloadOp, WorkloadTarget,
    WorkloadWorker,
};

use crate::backend::QuorumBackend;
use crate::cluster::{with_cluster, Cluster, ClusterConfig, QuorumTs};
use crate::net::FaultPlan;

/// [`QuorumTs`] as a workload target: one slot per process, one gated
/// sub-step per replica interaction.
///
/// The broken variant keeps the same step grammar but skips the
/// per-worker timestamp-property assertion — replaying the explorer's
/// counterexample *observes* the violation (the replayer checks
/// outputs), it must not crash the worker.
#[derive(Debug)]
pub struct QuorumTsTarget {
    ts: QuorumTs,
    processes: usize,
}

impl QuorumTsTarget {
    /// Correct protocol for `processes` clients tolerating `f`
    /// failures.
    pub fn new(processes: usize, f: usize) -> Self {
        Self {
            ts: QuorumTs::new(f),
            processes,
        }
    }

    /// The broken write-quorum-of-1 variant.
    pub fn broken(processes: usize, f: usize) -> Self {
        Self {
            ts: QuorumTs::broken(f),
            processes,
        }
    }

    /// The underlying timestamp object.
    pub fn object_ref(&self) -> &QuorumTs {
        &self.ts
    }
}

struct QuorumTsWorker<'a> {
    target: &'a QuorumTsTarget,
    slot: usize,
    history: OpHistory<Timestamp>,
}

impl QuorumTsWorker<'_> {
    fn record(&mut self, t: Timestamp) {
        if self.target.ts.is_correct() {
            if let Some(p) = self.history.last() {
                assert!(
                    Timestamp::compare(&p, &t),
                    "quorum_ts violated the timestamp property: {p} !< {t}"
                );
            }
        }
        self.history.push(t);
    }
}

impl WorkloadWorker for QuorumTsWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.target.ts.get_ts(self.slot);
                self.record(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                std::hint::black_box(self.target.ts.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        std::hint::black_box(Timestamp::compare(&a, &b)),
                        "quorum_ts history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                gate.pause(); // op start
                let t = self.target.ts.get_ts_paused(self.slot, || gate.pause());
                self.record(t);
                WorkloadOp::GetTs
            }
            other => {
                gate.pause();
                self.step(other)
            }
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl WorkloadTarget for QuorumTsTarget {
    fn object(&self) -> &'static str {
        if self.ts.is_correct() {
            "quorum_ts"
        } else {
            "quorum_ts_broken"
        }
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.processes
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.processes, "slot {slot} out of range");
        Box::new(QuorumTsWorker {
            target: self,
            slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = ServiceStats::default();
        self.ts.cluster().fill_stats(&mut stats);
        Some(stats)
    }
}

/// The collect-max timestamp object on quorum-replicated registers:
/// `CollectMax<QuorumBackend>` bundled with its [`Cluster`] so grid
/// cells can carry a fault profile and report quorum counters.
pub struct ReplicatedCollectMax {
    cluster: Arc<Cluster>,
    inner: CollectMax<QuorumBackend>,
    label: &'static str,
}

impl ReplicatedCollectMax {
    /// A fault-free replicated collect-max for `processes` slots over
    /// a cluster tolerating `f` failures. `label` names the grid cell
    /// ("replicated_f1", ...).
    pub fn new(processes: usize, f: usize, label: &'static str) -> Self {
        Self::with_plan(processes, f, label, FaultPlan::default())
    }

    /// Same, with an explicit fault plan.
    pub fn with_plan(processes: usize, f: usize, label: &'static str, plan: FaultPlan) -> Self {
        let cluster = Cluster::new(ClusterConfig::new(f).with_plan(plan));
        let inner = with_cluster(&cluster, || CollectMax::with_backend(processes));
        Self {
            cluster,
            inner,
            label,
        }
    }

    /// The cluster behind the registers (partition knobs, counters).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The wrapped collect-max object.
    pub fn inner(&self) -> &CollectMax<QuorumBackend> {
        &self.inner
    }
}

impl std::fmt::Debug for ReplicatedCollectMax {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedCollectMax")
            .field("label", &self.label)
            .field("cluster", &self.cluster)
            .finish_non_exhaustive()
    }
}

impl WorkloadTarget for ReplicatedCollectMax {
    fn object(&self) -> &'static str {
        self.label
    }

    fn backend(&self) -> &'static str {
        "quorum"
    }

    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        self.inner.worker(slot)
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        self.inner.replay_granularity()
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        let mut stats = self.inner.stats();
        self.cluster.fill_stats(&mut stats);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_ts_target_steps_and_tracks_history() {
        let target = QuorumTsTarget::new(2, 1);
        assert_eq!(target.object(), "quorum_ts");
        assert_eq!(target.backend(), "quorum");
        assert_eq!(target.slots(), 2);
        assert_eq!(target.replay_granularity(), ReplayGranularity::MemoryAccess);
        let mut w = target.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        // Compare before two stamps exist substitutes a GetTs.
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        assert_eq!(w.last_ts(), Some(Timestamp::scalar(2)));
    }

    #[test]
    fn broken_target_reports_its_own_object_label() {
        let target = QuorumTsTarget::broken(2, 1);
        assert_eq!(target.object(), "quorum_ts_broken");
        let mut w = target.worker(1);
        w.step(WorkloadOp::GetTs);
        assert!(w.last_ts().is_some());
    }

    #[test]
    fn replicated_collect_max_issues_through_quorums() {
        let target = ReplicatedCollectMax::new(2, 1, "replicated_f1");
        assert_eq!(target.object(), "replicated_f1");
        assert_eq!(target.backend(), "quorum");
        let mut w = target.worker(0);
        w.step(WorkloadOp::GetTs);
        w.step(WorkloadOp::GetTs);
        drop(w);
        let stats = target.service_stats().expect("stats");
        assert_eq!(stats.calls, 2);
        assert!(
            stats.quorum_rounds > 0,
            "register traffic went through quorums: {stats:?}"
        );
        assert!(stats.rounds_per_call().expect("replicated") >= 1.0);
    }

    #[test]
    fn gated_quorum_ts_announces_message_steps() {
        let target = Arc::new(QuorumTsTarget::new(1, 1));
        let gate = Arc::new(StepGate::new());
        let t2 = Arc::clone(&target);
        let g2 = Arc::clone(&gate);
        let handle = std::thread::spawn(move || {
            let mut w = t2.worker(0);
            w.step_gated(WorkloadOp::GetTs, &g2);
            g2.finish();
        });
        // Op start + 2 reads + 2 installs = 5 announced sub-steps.
        for step in 1..=5 {
            gate.release_next(std::time::Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("release {step}: {e}"));
        }
        handle.join().expect("worker thread");
        let progress = gate.progress();
        assert_eq!(progress.announced, 5, "one pause per message step");
        assert!(progress.done);
    }
}
