//! The replica cluster: `2f + 1` replicas, one router, and the ABD
//! client operations that read and write registers through them.
//!
//! # Client operations
//!
//! [`Cluster::abd_read`] and [`Cluster::abd_write`] are the classic
//! two-phase majority protocol:
//!
//! * **read** — query `f + 1` replicas for their `(stamp, word)`;
//!   take the lexicographic maximum. If the replies *diverged*, push
//!   the maximum back onto `f + 1` replicas (read-repair) before
//!   returning, so a later read can never observe an older value.
//!   When the replies agree, `f + 1` replicas already hold the
//!   maximum and the write-back is skipped.
//! * **write** — query `f + 1` replicas for stamps, pick
//!   `(max.seq + 1, self)`, then install on `f + 1` replicas and
//!   return only once all acks arrive — the ack set is the durability
//!   proof.
//!
//! Any two `f + 1` subsets of `2f + 1` intersect, which is the whole
//! correctness argument; replica choice is a rotation preference, not
//! a requirement, so clients widen their target set on retry and
//! survive any minority of unreachable replicas.
//!
//! # Determinism
//!
//! All nondeterminism lives in the router's seeded
//! [`FaultPlan`] plus the thread schedule.
//! Single-threaded clients over a seeded plan replay **bit-identically**
//! (see `delivery_log`); multi-threaded runs stay linearizable but not
//! schedule-stable, exactly like the shared-memory objects upstream.
//!
//! # Ambient wiring
//!
//! [`RegisterBackend`](ts_register::RegisterBackend) construction has
//! no context parameter, so the generic seams
//! (`RegisterArray::with_backend`, `CollectMax::with_backend`, …) are
//! wired through a thread-local scope: build objects inside
//! [`with_cluster`] and every quorum register they create joins that
//! cluster. Outside any scope a register gets its own private
//! fault-free `f = 1` cluster, which keeps doc-tests and quick probes
//! zero-ceremony.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ts_core::workload::VpidAllocator;
use ts_core::{ServiceStats, Timestamp};

use crate::net::{FaultPlan, NetStats, Pumped, Router};
use crate::proto::{Message, MsgKind, WriteStamp};
use crate::replica::Replica;

/// Retransmission attempts before a client declares itself cut off.
/// Only reachable when a quorum stays partitioned away forever.
const MAX_ATTEMPTS: usize = 100_000;

/// Shape and fault schedule of a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Tolerated replica failures; the cluster runs `2f + 1` replicas
    /// and quorums are `f + 1`.
    pub f: usize,
    /// The router's seeded fault schedule.
    pub plan: FaultPlan,
}

impl ClusterConfig {
    /// Fault-free config tolerating `f` failures.
    pub fn new(f: usize) -> Self {
        Self {
            f,
            plan: FaultPlan::default(),
        }
    }

    /// Replaces the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replica count (`2f + 1`).
    pub fn replicas(&self) -> usize {
        2 * self.f + 1
    }
}

thread_local! {
    /// Stack of ambient clusters (innermost last); see [`with_cluster`].
    static AMBIENT: RefCell<Vec<Arc<Cluster>>> = const { RefCell::new(Vec::new()) };
    /// This thread's client id per cluster uid.
    static CLIENT_IDS: RefCell<HashMap<u64, u32>> = RefCell::new(HashMap::new());
}

static NEXT_CLUSTER_UID: AtomicU64 = AtomicU64::new(0);

/// Runs `f` with `cluster` as the ambient cluster: every
/// [`QuorumBackend`](crate::QuorumBackend) register created inside
/// (directly or through a generic seam like
/// `CollectMax::with_backend`) joins it.
///
/// Scopes nest (innermost wins) and unwind safely on panic.
pub fn with_cluster<R>(cluster: &Arc<Cluster>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(Arc::clone(cluster)));
    let _guard = Guard;
    f()
}

/// The innermost ambient cluster on this thread, if any.
pub(crate) fn ambient_cluster() -> Option<Arc<Cluster>> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// `2f + 1` [`Replica`]s behind one fault-injecting
/// [`Router`]. See the module docs for the protocol and wiring.
pub struct Cluster {
    uid: u64,
    config: ClusterConfig,
    replicas: Vec<Replica>,
    router: Router,
    next_reg: AtomicU32,
    next_op: AtomicU64,
    client_vpids: VpidAllocator,
    /// Reply mailboxes keyed by client id, filled by whichever thread
    /// pumps a client-bound delivery.
    mailboxes: Mutex<HashMap<u32, Vec<Message>>>,
    rounds: AtomicU64,
    repairs: AtomicU64,
    retries: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("f", &self.config.f)
            .field("replicas", &self.replicas.len())
            .field("plan", &self.config.plan)
            .field("registers", &self.next_reg.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds a cluster of `2f + 1` replicas running `config.plan`.
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        Arc::new(Self {
            uid: NEXT_CLUSTER_UID.fetch_add(1, Ordering::Relaxed),
            config,
            replicas: (0..config.replicas() as u32).map(Replica::new).collect(),
            router: Router::new(config.plan),
            next_reg: AtomicU32::new(0),
            next_op: AtomicU64::new(0),
            client_vpids: VpidAllocator::new(),
            mailboxes: Mutex::new(HashMap::new()),
            rounds: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        })
    }

    /// The cluster's shape and plan.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Tolerated failures `f`.
    pub fn f(&self) -> usize {
        self.config.f
    }

    /// Replica count (`2f + 1`).
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Quorum size (`f + 1`).
    pub fn quorum(&self) -> usize {
        self.config.f + 1
    }

    /// Direct access to a replica (durability probes, invariants).
    pub fn replica(&self, id: usize) -> &Replica {
        &self.replicas[id]
    }

    /// The fault-injecting router (partition/heal knobs, step hook,
    /// delivery log).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Network-level counters.
    pub fn net_stats(&self) -> NetStats {
        self.router.stats()
    }

    /// Quorum round-trips performed (one per completed phase).
    pub fn quorum_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Read-repair write-backs performed.
    pub fn quorum_repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }

    /// Client retransmission attempts (fault pressure).
    pub fn quorum_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Copies the quorum counters into a [`ServiceStats`] snapshot.
    pub fn fill_stats(&self, stats: &mut ServiceStats) {
        stats.quorum_rounds = self.quorum_rounds();
        stats.quorum_repairs = self.quorum_repairs();
        stats.quorum_retries = self.quorum_retries();
    }

    /// Allocates a fresh register initialized to `word` on every
    /// replica.
    pub fn alloc_register(self: &Arc<Self>, word: u64) -> u32 {
        let reg = self.next_reg.fetch_add(1, Ordering::Relaxed);
        for replica in &self.replicas {
            replica.init_register(reg, word);
        }
        reg
    }

    /// Registers allocated so far.
    pub fn registers(&self) -> u32 {
        self.next_reg.load(Ordering::Relaxed)
    }

    /// This thread's client id on this cluster (minted on first use).
    pub fn client_id(&self) -> u32 {
        CLIENT_IDS.with(|m| {
            *m.borrow_mut()
                .entry(self.uid)
                .or_insert_with(|| Message::CLIENT_BASE + self.client_vpids.next())
        })
    }

    /// ABD read: returns the quorum-maximum `(stamp, word)`, repairing
    /// divergent replicas on the way out.
    pub fn abd_read(&self, reg: u32) -> (WriteStamp, u64) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let replies = self.quorum_rpc(need, |op, from, to| Message {
            kind: MsgKind::ReadQuery,
            op,
            from,
            to,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        });
        let best = replies
            .iter()
            .max_by_key(|m| m.stamp())
            .expect("quorum_rpc returns a full quorum");
        let (stamp, word) = (best.stamp(), best.word);
        if replies.iter().any(|m| m.stamp() < stamp) {
            // Read-repair: the replies diverged, so the maximum may be
            // durable on fewer than f + 1 replicas. Write it back
            // before returning or a later read could go backwards.
            self.repairs.fetch_add(1, Ordering::Relaxed);
            self.write_back(reg, stamp, word);
        }
        (stamp, word)
    }

    /// ABD write: two phases (stamp query, quorum install). Returns
    /// the stamp the write landed under; when the ack quorum is in,
    /// `f + 1` replicas hold a stamp `>=` it.
    pub fn abd_write(&self, reg: u32, word: u64) -> WriteStamp {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let replies = self.quorum_rpc(need, |op, from, to| Message {
            kind: MsgKind::ReadQuery,
            op,
            from,
            to,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        });
        let max = replies
            .iter()
            .map(|m| m.stamp())
            .max()
            .expect("quorum_rpc returns a full quorum");
        let stamp = max.next(self.client_id());
        self.write_back(reg, stamp, word);
        stamp
    }

    /// One quorum write phase: install `(stamp, word)` on `f + 1`
    /// replicas and wait for all acks.
    fn write_back(&self, reg: u32, stamp: WriteStamp, word: u64) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let acks = self.quorum_rpc(need, |op, from, to| Message {
            kind: MsgKind::Write,
            op,
            from,
            to,
            reg,
            seq: stamp.seq,
            writer: stamp.writer,
            word,
            expected: 0,
        });
        debug_assert!(acks.iter().all(|a| a.kind == MsgKind::WriteAck));
    }

    /// Sends one request per target replica and collects `need`
    /// replies from distinct replicas, retransmitting (with a fresh op
    /// id and a widened target set) whenever the network runs dry.
    fn quorum_rpc(&self, need: usize, build: impl Fn(u64, u32, u32) -> Message) -> Vec<Message> {
        let client = self.client_id();
        let n = self.replicas.len();
        debug_assert!(need <= n);
        let mut attempt = 0usize;
        loop {
            let op = self.next_op.fetch_add(1, Ordering::Relaxed);
            // Rotate the window by client id (load spreading) and by
            // attempt, widening until every replica is targeted.
            let width = (need + attempt).min(n);
            let start = (client as usize + attempt) % n;
            let direct = self.config.plan.is_fault_free();
            let mut replies: Vec<Message> = Vec::with_capacity(need);
            if direct {
                for i in 0..width {
                    let to = ((start + i) % n) as u32;
                    if let Some(reply) = self.interact_direct(build(op, client, to)) {
                        replies.push(reply);
                        if replies.len() == need {
                            return replies;
                        }
                    }
                }
            } else {
                for i in 0..width {
                    let to = ((start + i) % n) as u32;
                    self.router.send(build(op, client, to));
                }
                if self.collect_replies(client, op, need, &mut replies) {
                    return replies;
                }
            }
            attempt += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            assert!(
                attempt < MAX_ATTEMPTS,
                "client {client} cannot reach a quorum ({need} of {n} replicas) \
                 after {attempt} attempts — partitioned forever?"
            );
            std::thread::yield_now();
        }
    }

    /// Fault-free synchronous interaction: applies the handler inline
    /// (no queue), honoring partitions and the step hook. Returns
    /// `None` when either endpoint is isolated.
    fn interact_direct(&self, msg: Message) -> Option<Message> {
        if !self.router.no_partition_fast()
            && (self.router.is_blocked(msg.from) || self.router.is_blocked(msg.to))
        {
            return None;
        }
        self.router.fire_hook(&msg);
        let reply = self.replicas[msg.to as usize].handle(&msg);
        self.router.fire_hook(&reply);
        Some(reply)
    }

    /// Pumps the router until `need` distinct replicas answered `op`,
    /// or the network runs dry (returns `false`: time to retransmit).
    fn collect_replies(
        &self,
        client: u32,
        op: u64,
        need: usize,
        replies: &mut Vec<Message>,
    ) -> bool {
        loop {
            self.drain_mailbox(client, op, replies);
            if replies.len() >= need {
                return true;
            }
            match self.router.pump() {
                Pumped::Deliver(msg) => {
                    if msg.to < Message::CLIENT_BASE {
                        let reply = self.replicas[msg.to as usize].handle(&msg);
                        self.router.send(reply);
                    } else {
                        self.mailboxes
                            .lock()
                            .expect("mailbox lock")
                            .entry(msg.to)
                            .or_default()
                            .push(msg);
                    }
                }
                Pumped::Discarded => {}
                Pumped::Idle => {
                    // Another pumping thread may have deposited our
                    // replies between the drain and the pump.
                    self.drain_mailbox(client, op, replies);
                    return replies.len() >= need;
                }
            }
        }
    }

    /// Moves this client's current-op replies out of its mailbox,
    /// deduplicating by replica and dropping stale-op leftovers.
    fn drain_mailbox(&self, client: u32, op: u64, replies: &mut Vec<Message>) {
        let drained = {
            let mut boxes = self.mailboxes.lock().expect("mailbox lock");
            match boxes.get_mut(&client) {
                Some(inbox) if !inbox.is_empty() => std::mem::take(inbox),
                _ => return,
            }
        };
        for msg in drained {
            if msg.op == op && !replies.iter().any(|r| r.from == msg.from) {
                replies.push(msg);
            }
        }
    }

    // ---- step-addressed single-replica access (the QuorumTs path) ----

    /// Reads replica `replica`'s word for `reg` — one protocol step,
    /// delivered synchronously (the step hook still fires).
    pub(crate) fn replica_fetch(&self, replica: u32, reg: u32) -> u64 {
        let msg = Message {
            kind: MsgKind::ReadQuery,
            op: self.next_op.fetch_add(1, Ordering::Relaxed),
            from: self.client_id(),
            to: replica,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        };
        self.router.fire_hook(&msg);
        let reply = self.replicas[replica as usize].handle(&msg);
        self.router.fire_hook(&reply);
        reply.word
    }

    /// Conditionally installs `new` over `expected` on one replica —
    /// one protocol step. Returns the word held before (equality with
    /// `expected` means it landed).
    pub(crate) fn replica_install(&self, replica: u32, reg: u32, expected: u64, new: u64) -> u64 {
        let msg = Message {
            kind: MsgKind::Install,
            op: self.next_op.fetch_add(1, Ordering::Relaxed),
            from: self.client_id(),
            to: replica,
            reg,
            seq: new as u32,
            writer: 0,
            word: new,
            expected,
        };
        self.router.fire_hook(&msg);
        let reply = self.replicas[replica as usize].handle(&msg);
        self.router.fire_hook(&reply);
        reply.word
    }
}

/// The replicated timestamp object whose steps are **messages**: the
/// real twin of [`QuorumModel`](crate::QuorumModel).
///
/// Each `getTS` reads `f + 1` replicas (rotating by pid), proposes
/// `max + 1`, then conditionally installs it on its write quorum —
/// every replica interaction is one gated step, so the model
/// checker's message interleavings replay against these real replicas
/// through the usual
/// [`StepGate`](ts_core::workload::StepGate) pacing.
///
/// [`QuorumTs::broken`] shrinks the write quorum to a single replica:
/// reads and writes then no longer intersect, and the explorer finds
/// the duplicate-timestamp interleaving — which replays here, on real
/// replicas, as the acceptance counterexample.
#[derive(Debug)]
pub struct QuorumTs {
    cluster: Arc<Cluster>,
    reg: u32,
    write_quorum: usize,
}

impl QuorumTs {
    /// Correct protocol: read and write quorums of `f + 1`.
    pub fn new(f: usize) -> Self {
        Self::with_write_quorum(Cluster::new(ClusterConfig::new(f)), f + 1)
    }

    /// Deliberately broken protocol: writes land on one replica only.
    pub fn broken(f: usize) -> Self {
        Self::with_write_quorum(Cluster::new(ClusterConfig::new(f)), 1)
    }

    /// A timestamp object on an existing cluster with an explicit
    /// write-quorum size (`1..=f + 1`).
    pub fn with_write_quorum(cluster: Arc<Cluster>, write_quorum: usize) -> Self {
        assert!(
            (1..=cluster.quorum()).contains(&write_quorum),
            "write quorum must be in 1..=f+1"
        );
        let reg = cluster.alloc_register(0);
        Self {
            cluster,
            reg,
            write_quorum,
        }
    }

    /// The cluster the object lives on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Whether this instance runs the intersecting (correct) quorums.
    pub fn is_correct(&self) -> bool {
        self.write_quorum == self.cluster.quorum()
    }

    /// `getTS` without gating.
    pub fn get_ts(&self, pid: usize) -> Timestamp {
        self.get_ts_paused(pid, || {})
    }

    /// `getTS` with a pause before **every replica interaction** (the
    /// message-step granularity the replayer schedules).
    pub fn get_ts_paused(&self, pid: usize, mut pause: impl FnMut()) -> Timestamp {
        let n = self.cluster.replicas();
        let read_quorum = self.cluster.quorum();
        let mut observed = Vec::with_capacity(read_quorum);
        for i in 0..read_quorum {
            pause();
            observed.push(self.cluster.replica_fetch(((pid + i) % n) as u32, self.reg));
        }
        let proposal = observed.iter().copied().max().expect("non-empty quorum") + 1;
        for (j, expected) in observed.iter().copied().take(self.write_quorum).enumerate() {
            let replica = ((pid + j) % n) as u32;
            let mut expected = expected;
            loop {
                pause();
                let prior = self
                    .cluster
                    .replica_install(replica, self.reg, expected, proposal);
                if prior == expected || prior >= proposal {
                    // Landed, or someone already installed >= ours.
                    break;
                }
                expected = prior;
            }
        }
        Timestamp::scalar(proposal)
    }

    /// Largest word any replica holds (observation probe for tests).
    pub fn read_max(&self) -> u64 {
        (0..self.cluster.replicas())
            .map(|r| self.cluster.replica(r).stored(self.reg).1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_read_write_round_trips() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(7);
        assert_eq!(cluster.abd_read(reg), (WriteStamp::INITIAL, 7));
        let stamp = cluster.abd_write(reg, 42);
        assert_eq!(stamp.seq, 1);
        let (read_stamp, word) = cluster.abd_read(reg);
        assert_eq!((read_stamp, word), (stamp, 42));
        // Fault-free reads of agreeing replicas never repair.
        assert_eq!(cluster.quorum_repairs(), 0);
    }

    #[test]
    fn writes_survive_any_minority_partition() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        // This thread's client id rotates its quorum window to start at
        // replica 1 — partition exactly that replica, so the write must
        // retry and widen past its preferred window.
        let start = cluster.client_id() as usize % cluster.replicas();
        cluster.router().partition(&[start as u32]);
        let stamp = cluster.abd_write(reg, 5);
        // f + 1 = 2 replicas hold the write despite the partition.
        let holders = (0..3)
            .filter(|&r| cluster.replica(r).stored(reg) == (stamp, 5))
            .count();
        assert!(holders >= 2, "only {holders} replicas hold the write");
        assert!(
            !cluster.router().isolated().is_empty(),
            "partition still active"
        );
        assert!(cluster.quorum_retries() > 0, "the partition forced retries");
        cluster.router().heal();
        assert_eq!(cluster.abd_read(reg).1, 5);
    }

    #[test]
    fn divergent_replicas_are_read_repaired() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        // Pick the replica just *outside* this client's preferred
        // window, partition it, write: it stays stale.
        let n = cluster.replicas();
        let start = cluster.client_id() as usize % n;
        let stale = ((start + 2) % n) as u32;
        cluster.router().partition(&[stale]);
        cluster.abd_write(reg, 9);
        cluster.router().heal();
        assert_eq!(cluster.replica(stale as usize).stored(reg).1, 0, "stale");
        // A reader whose window covers the stale replica observes
        // divergent replies and repairs before returning. Client ids
        // are per-thread, so mint readers until one's window hits it.
        let repaired = std::thread::scope(|s| {
            let mut hit = false;
            for _ in 0..n {
                hit |= s
                    .spawn(|| {
                        let me = cluster.client_id() as usize % n;
                        assert_eq!(cluster.abd_read(reg).1, 9, "no stale read, ever");
                        me == stale as usize || (me + 1) % n == stale as usize
                    })
                    .join()
                    .expect("reader thread");
            }
            hit
        });
        assert!(repaired, "some reader's window covered the stale replica");
        assert!(cluster.quorum_repairs() >= 1);
        assert_eq!(cluster.replica(stale as usize).stored(reg).1, 9, "repaired");
    }

    #[test]
    fn lossy_network_still_linearizes() {
        let plan = FaultPlan {
            seed: 11,
            drop_permille: 200,
            dup_permille: 100,
            delay_max: 3,
            reorder: true,
            ..FaultPlan::default()
        };
        let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
        let reg = cluster.alloc_register(0);
        for v in 1..=20u64 {
            cluster.abd_write(reg, v);
            assert_eq!(cluster.abd_read(reg).1, v, "read your own write");
        }
        let stats = cluster.net_stats();
        assert!(stats.dropped > 0, "the plan actually dropped: {stats:?}");
    }

    #[test]
    fn ambient_scope_nests_and_unwinds() {
        let outer = Cluster::new(ClusterConfig::new(0));
        let inner = Cluster::new(ClusterConfig::new(1));
        assert!(ambient_cluster().is_none());
        with_cluster(&outer, || {
            assert_eq!(ambient_cluster().expect("outer").uid, outer.uid);
            with_cluster(&inner, || {
                assert_eq!(ambient_cluster().expect("inner").uid, inner.uid);
            });
            assert_eq!(ambient_cluster().expect("outer again").uid, outer.uid);
        });
        assert!(ambient_cluster().is_none());
    }

    #[test]
    fn quorum_ts_is_monotone_per_thread() {
        let ts = QuorumTs::new(1);
        let mut last = None;
        for _ in 0..10 {
            let t = ts.get_ts(0);
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "{prev:?} !< {t:?}");
            }
            last = Some(t);
        }
        assert_eq!(ts.read_max(), 10);
    }

    #[test]
    fn broken_quorum_ts_duplicates_stamps_across_disjoint_windows() {
        let ts = QuorumTs::broken(1);
        assert!(!ts.is_correct());
        // With a write quorum of 1, pid 0 installs only on replica 0 —
        // and pid 1's read window {1, 2} never sees it. Two
        // *non-overlapping* calls return the same timestamp: exactly
        // the violation the model explorer minimizes.
        let a = ts.get_ts(0);
        let b = ts.get_ts(1);
        assert_eq!(a, b, "non-intersecting quorums duplicate stamps");
        // A window that does cover replica 0 stays ordered.
        let c = ts.get_ts(2);
        assert!(Timestamp::compare(&a, &c));
    }

    #[test]
    fn step_hook_counts_quorum_ts_messages() {
        use std::sync::atomic::AtomicU64 as Count;
        let cluster = Cluster::new(ClusterConfig::new(1));
        let ts = QuorumTs::with_write_quorum(Arc::clone(&cluster), 2);
        let count = Arc::new(Count::new(0));
        let c2 = Arc::clone(&count);
        cluster.router().set_step_hook(Some(Box::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        })));
        ts.get_ts(0);
        // 2 reads + 2 installs, each a request + reply pair.
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }
}
