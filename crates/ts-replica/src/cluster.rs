//! The replica cluster: `2f + 1` replicas, one router, and the ABD
//! client operations that read and write registers through them.
//!
//! # Client operations
//!
//! [`Cluster::abd_read`] and [`Cluster::abd_write`] are the classic
//! two-phase majority protocol:
//!
//! * **read** — query `f + 1` replicas for their `(stamp, word)`;
//!   take the lexicographic maximum. If the replies *diverged*, push
//!   the maximum back onto `f + 1` replicas (read-repair) before
//!   returning, so a later read can never observe an older value.
//!   When the replies agree, `f + 1` replicas already hold the
//!   maximum and the write-back is skipped.
//! * **write** — query `f + 1` replicas for stamps, pick
//!   `(max.seq + 1, self)`, then install on `f + 1` replicas and
//!   return only once all acks arrive — the ack set is the durability
//!   proof.
//!
//! Any two `f + 1` subsets of `2f + 1` intersect, which is the whole
//! correctness argument; replica choice is a rotation preference, not
//! a requirement, so clients widen their target set on retry and
//! survive any minority of unreachable replicas.
//!
//! # Determinism
//!
//! All nondeterminism lives in the router's seeded
//! [`FaultPlan`] plus the thread schedule.
//! Single-threaded clients over a seeded plan replay **bit-identically**
//! (see `delivery_log`); multi-threaded runs stay linearizable but not
//! schedule-stable, exactly like the shared-memory objects upstream.
//!
//! # Ambient wiring
//!
//! [`RegisterBackend`](ts_register::RegisterBackend) construction has
//! no context parameter, so the generic seams
//! (`RegisterArray::with_backend`, `CollectMax::with_backend`, …) are
//! wired through a thread-local scope: build objects inside
//! [`with_cluster`] and every quorum register they create joins that
//! cluster. Outside any scope a register gets its own private
//! fault-free `f = 1` cluster, which keeps doc-tests and quick probes
//! zero-ceremony.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ts_core::workload::VpidAllocator;
use ts_core::{ServiceStats, Timestamp};

use crate::net::{FaultPlan, NetStats, Pumped, Router};
use crate::proto::{Message, MsgKind, WriteStamp};
use crate::replica::Replica;

/// Default per-operation deadline, in client-local steps (see
/// [`ClusterConfig::deadline`]). Generous: a healthy or lossy-but-live
/// network resolves a quorum op in tens of steps; only a quorum that
/// stays unreachable burns the whole budget.
pub const DEFAULT_DEADLINE: u64 = 1 << 20;

/// Exponential-backoff exponent cap: waits grow `2, 4, ..., 2^CAP`
/// steps (plus seeded jitter) and then plateau.
const BACKOFF_CAP: u64 = 10;

/// Shape and fault schedule of a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Tolerated replica failures; the cluster runs `2f + 1` replicas
    /// and quorums are `f + 1`.
    pub f: usize,
    /// The router's seeded fault schedule.
    pub plan: FaultPlan,
    /// Per-operation deadline in **client-local steps** — every replica
    /// probe, router pump, and backoff tick a quorum op performs counts
    /// one step. No wall clock anywhere: the same seed and schedule
    /// exhaust the deadline at the same step, so timeouts replay
    /// deterministically.
    pub deadline: u64,
}

impl ClusterConfig {
    /// Fault-free config tolerating `f` failures.
    pub fn new(f: usize) -> Self {
        Self {
            f,
            plan: FaultPlan::default(),
            deadline: DEFAULT_DEADLINE,
        }
    }

    /// Replaces the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the per-operation step deadline (must be nonzero).
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        assert!(deadline > 0, "deadline must be nonzero");
        self.deadline = deadline;
        self
    }

    /// Replica count (`2f + 1`).
    pub fn replicas(&self) -> usize {
        2 * self.f + 1
    }
}

/// How a crashed replica comes back in [`Cluster::restart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// The replica kept its durable state across the crash.
    Retain,
    /// The replica lost everything (restart from an empty disk); the
    /// rejoin resync sweep rebuilds its slots from the live majority.
    Wipe,
}

/// A quorum operation exhausted its step deadline: fewer than `f + 1`
/// replicas were reachable for its whole retry/backoff budget.
///
/// Returned by the `try_*` client operations; the infallible
/// [`RegisterBackend`](ts_register::RegisterBackend) seam converts it
/// into a panic carrying this diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unavailable {
    /// The register the operation targeted.
    pub reg: u32,
    /// Which phase gave up ("read", "write", "write-back").
    pub op: &'static str,
    /// Retransmission attempts made before giving up.
    pub attempts: u64,
    /// Client-local steps consumed (probes + pumps + backoff ticks).
    pub steps: u64,
    /// The deadline those steps exhausted.
    pub deadline: u64,
    /// Replicas crashed at the moment of giving up.
    pub crashed: Vec<u32>,
    /// Replicas partitioned away at the moment of giving up.
    pub isolated: Vec<u32>,
}

impl std::fmt::Display for Unavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quorum {} on register {} unavailable: {} attempts / {} steps \
             (deadline {}), crashed replicas {:?}, partitioned {:?}",
            self.op,
            self.reg,
            self.attempts,
            self.steps,
            self.deadline,
            self.crashed,
            self.isolated
        )
    }
}

impl std::error::Error for Unavailable {}

/// SplitMix64-flavored hash: deterministic backoff jitter from
/// `(plan seed, client, op, attempt)` — no RNG state to carry, no wall
/// clock, bit-identical on replay.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    /// Stack of ambient clusters (innermost last); see [`with_cluster`].
    static AMBIENT: RefCell<Vec<Arc<Cluster>>> = const { RefCell::new(Vec::new()) };
    /// This thread's client id per cluster uid.
    static CLIENT_IDS: RefCell<HashMap<u64, u32>> = RefCell::new(HashMap::new());
}

static NEXT_CLUSTER_UID: AtomicU64 = AtomicU64::new(0);

/// Runs `f` with `cluster` as the ambient cluster: every
/// [`QuorumBackend`](crate::QuorumBackend) register created inside
/// (directly or through a generic seam like
/// `CollectMax::with_backend`) joins it.
///
/// Scopes nest (innermost wins) and unwind safely on panic.
pub fn with_cluster<R>(cluster: &Arc<Cluster>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(Arc::clone(cluster)));
    let _guard = Guard;
    f()
}

/// The innermost ambient cluster on this thread, if any.
pub(crate) fn ambient_cluster() -> Option<Arc<Cluster>> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// `2f + 1` [`Replica`]s behind one fault-injecting
/// [`Router`]. See the module docs for the protocol and wiring.
pub struct Cluster {
    uid: u64,
    config: ClusterConfig,
    replicas: Vec<Replica>,
    router: Router,
    next_reg: AtomicU32,
    next_op: AtomicU64,
    client_vpids: VpidAllocator,
    /// Reply mailboxes keyed by client id, filled by whichever thread
    /// pumps a client-bound delivery.
    mailboxes: Mutex<HashMap<u32, Vec<Message>>>,
    rounds: AtomicU64,
    repairs: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    backoffs: AtomicU64,
    degraded: AtomicU64,
    unavailable: AtomicU64,
    crashes: AtomicU64,
    restarts: AtomicU64,
    resynced_regs: AtomicU64,
    /// Bumped (Release) right *before* every wipe. A quorum phase
    /// snapshots it at attempt start and re-checks (Acquire) after its
    /// last reply: a change means some acking replica may have been
    /// wiped — and resynced from others that had not yet seen this
    /// phase's write — *inside* the ack window, so the phase discards
    /// the replies and retries instead of reporting a durability level
    /// it no longer has. See `quorum_rpc` for the full argument.
    wipe_epoch: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("f", &self.config.f)
            .field("replicas", &self.replicas.len())
            .field("plan", &self.config.plan)
            .field("registers", &self.next_reg.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds a cluster of `2f + 1` replicas running `config.plan`.
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        Arc::new(Self {
            uid: NEXT_CLUSTER_UID.fetch_add(1, Ordering::Relaxed),
            config,
            replicas: (0..config.replicas() as u32).map(Replica::new).collect(),
            router: Router::new(config.plan),
            next_reg: AtomicU32::new(0),
            next_op: AtomicU64::new(0),
            client_vpids: VpidAllocator::new(),
            mailboxes: Mutex::new(HashMap::new()),
            rounds: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            backoffs: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            resynced_regs: AtomicU64::new(0),
            wipe_epoch: AtomicU64::new(0),
        })
    }

    /// The cluster's shape and plan.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Tolerated failures `f`.
    pub fn f(&self) -> usize {
        self.config.f
    }

    /// Replica count (`2f + 1`).
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Quorum size (`f + 1`).
    pub fn quorum(&self) -> usize {
        self.config.f + 1
    }

    /// Direct access to a replica (durability probes, invariants).
    pub fn replica(&self, id: usize) -> &Replica {
        &self.replicas[id]
    }

    /// The fault-injecting router (partition/heal knobs, step hook,
    /// delivery log).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Network-level counters.
    pub fn net_stats(&self) -> NetStats {
        self.router.stats()
    }

    /// Quorum round-trips performed (one per completed phase).
    pub fn quorum_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Read-repair write-backs performed.
    pub fn quorum_repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }

    /// Client retransmission attempts (fault pressure).
    pub fn quorum_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations that exhausted their step deadline.
    pub fn quorum_timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Backoff steps spent waiting between retransmissions.
    pub fn quorum_backoff_steps(&self) -> u64 {
        self.backoffs.load(Ordering::Relaxed)
    }

    /// Operations that completed, but only after retrying (service was
    /// degraded, not down, from that client's perspective).
    pub fn quorum_degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Operations that returned [`Unavailable`].
    pub fn quorum_unavailable(&self) -> u64 {
        self.unavailable.load(Ordering::Relaxed)
    }

    /// Replica crashes injected.
    pub fn replica_crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Replica restarts performed.
    pub fn replica_restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Registers refreshed by rejoin resync sweeps.
    pub fn resynced_registers(&self) -> u64 {
        self.resynced_regs.load(Ordering::Relaxed)
    }

    /// Copies the quorum + network counters into a [`ServiceStats`]
    /// snapshot.
    pub fn fill_stats(&self, stats: &mut ServiceStats) {
        stats.quorum_rounds = self.quorum_rounds();
        stats.quorum_repairs = self.quorum_repairs();
        stats.quorum_retries = self.quorum_retries();
        stats.quorum_timeouts = self.quorum_timeouts();
        stats.quorum_backoff_steps = self.quorum_backoff_steps();
        stats.quorum_degraded = self.quorum_degraded();
        stats.quorum_unavailable = self.quorum_unavailable();
        let net = self.net_stats();
        stats.net_dropped = net.dropped;
        stats.net_duplicated = net.duplicated;
        stats.net_delayed = net.delayed;
        stats.net_reordered = net.reordered;
    }

    // ---- replica lifecycle (crash-stop faults) ----

    /// Crash-stops replica `id`: the router discards every message to
    /// or from it until [`Cluster::restart`]. Its in-memory state is
    /// untouched here — whether it survives is decided at restart time
    /// by the [`RestartMode`].
    pub fn crash(&self, id: u32) {
        assert!((id as usize) < self.replicas.len(), "no such replica");
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.router.crash_endpoint(id);
    }

    /// Restarts a crashed replica: optionally wipes its state, runs the
    /// rejoin **resync** sweep, then reconnects it.
    ///
    /// Resync runs *before* the endpoint is restored, so no client can
    /// observe the replica's pre-resync state: from the outside the
    /// crash+restart is one atomic transition from "offline" to
    /// "online and caught up". That ordering is what lets the model
    /// treat crash/recovery as single steps.
    pub fn restart(&self, id: u32, mode: RestartMode) {
        self.restart_inner(id, mode, true);
    }

    /// Broken twin of [`Cluster::restart`] that skips the resync sweep
    /// — a wiped replica rejoins remembering nothing. Exists to
    /// demonstrate *why* resync is load-bearing: with it skipped, a
    /// subsequent quorum read can count the amnesiac replica and (once
    /// `f` more replicas fail or lag) observe a stamp regression. The
    /// model checker finds the interleaving; see the
    /// `quorum_crash_skip_resync` corpus trace.
    pub fn restart_skip_resync(&self, id: u32, mode: RestartMode) {
        self.restart_inner(id, mode, false);
    }

    fn restart_inner(&self, id: u32, mode: RestartMode, resync: bool) {
        assert!((id as usize) < self.replicas.len(), "no such replica");
        assert!(self.router.is_crashed(id), "replica {id} is not crashed");
        self.restarts.fetch_add(1, Ordering::Relaxed);
        if resync && mode == RestartMode::Wipe {
            // A wiped replica's only copy of an acked write may be the
            // live others'. With fewer than a quorum of them up, some
            // acked write could be held *only* by still-crashed
            // replicas plus the state we are about to destroy — refuse
            // rather than silently lose it. (Checked before the wipe.)
            let live_others = (0..self.replicas.len() as u32)
                .filter(|&r| r != id && !self.router.is_crashed(r))
                .count();
            assert!(
                live_others >= self.quorum(),
                "resync of wiped replica {id} needs a live quorum of others \
                 ({} up, {} needed) — restart a retained replica first",
                live_others,
                self.quorum()
            );
        }
        if mode == RestartMode::Wipe {
            // Bumped before the state is destroyed: any quorum phase
            // whose final epoch check already passed saw the old value
            // here, so all of its acks landed before this wipe (and
            // before the resync reads below) — the live others still
            // hold its write. Any phase still inside its ack window
            // sees the bump and retries.
            self.wipe_epoch.fetch_add(1, Ordering::Release);
            self.replicas[id as usize].wipe();
        }
        if resync {
            self.resync(id);
        }
        self.router.restore_endpoint(id);
    }

    /// Catch-up read-repair sweep for a healing replica: for every
    /// register, read the stored `(stamp, word)` of **all live other
    /// replicas**, take the stamp-maximum, and install it into the
    /// healing replica through the ordinary `Write` handler (so the
    /// monotonic-stamp assert stays armed).
    ///
    /// Soundness (the wiped case — the retained case only gains): with
    /// at most `f` replicas down in total (the healing one included),
    /// the live others number at least `f + 1` — a quorum — and any
    /// acked write is held by `f + 1` replicas, of which at most
    /// `f - 1` others can be down. So at least one live other replica
    /// holds every acked write, and the max over them dominates
    /// everything clients were promised. `restart_inner` enforces the
    /// live-quorum precondition before a wipe.
    fn resync(&self, id: u32) {
        let live: Vec<u32> = (0..self.replicas.len() as u32)
            .filter(|&r| r != id && !self.router.is_crashed(r))
            .collect();
        if live.is_empty() {
            // Retained restart with everyone else down: nothing to
            // learn from; the replica rejoins with its own state.
            return;
        }
        let healing = &self.replicas[id as usize];
        for reg in 0..self.registers() {
            let (stamp, word) = live
                .iter()
                .map(|&r| self.replicas[r as usize].stored(reg))
                .max_by_key(|&(stamp, _)| stamp)
                .expect("live set is non-empty");
            let (mine, _) = healing.stored(reg);
            if stamp > mine {
                healing.handle(&Message {
                    kind: MsgKind::Write,
                    op: self.next_op.fetch_add(1, Ordering::Relaxed),
                    from: self.client_id(),
                    to: id,
                    reg,
                    seq: stamp.seq,
                    writer: stamp.writer,
                    word,
                    expected: 0,
                });
                self.resynced_regs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Currently crashed replica ids (sorted).
    pub fn crashed(&self) -> Vec<u32> {
        self.router.crashed()
    }

    /// Allocates a fresh register initialized to `word` on every
    /// replica.
    pub fn alloc_register(self: &Arc<Self>, word: u64) -> u32 {
        let reg = self.next_reg.fetch_add(1, Ordering::Relaxed);
        for replica in &self.replicas {
            replica.init_register(reg, word);
        }
        reg
    }

    /// Registers allocated so far.
    pub fn registers(&self) -> u32 {
        self.next_reg.load(Ordering::Relaxed)
    }

    /// This thread's client id on this cluster (minted on first use).
    pub fn client_id(&self) -> u32 {
        CLIENT_IDS.with(|m| {
            *m.borrow_mut()
                .entry(self.uid)
                .or_insert_with(|| Message::CLIENT_BASE + self.client_vpids.next())
        })
    }

    /// ABD read: returns the quorum-maximum `(stamp, word)`, repairing
    /// divergent replicas on the way out. Panics with the
    /// [`Unavailable`] diagnosis if a quorum stays unreachable for the
    /// whole deadline — fallible callers use [`Cluster::try_abd_read`].
    pub fn abd_read(&self, reg: u32) -> (WriteStamp, u64) {
        self.try_abd_read(reg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// ABD write; panicking twin of [`Cluster::try_abd_write`].
    pub fn abd_write(&self, reg: u32, word: u64) -> WriteStamp {
        self.try_abd_write(reg, word)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible ABD read: quorum-maximum `(stamp, word)` with
    /// read-repair, or [`Unavailable`] once the step deadline expires.
    pub fn try_abd_read(&self, reg: u32) -> Result<(WriteStamp, u64), Unavailable> {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let replies = self.quorum_rpc(need, "read", reg, |op, from, to| Message {
            kind: MsgKind::ReadQuery,
            op,
            from,
            to,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        })?;
        let best = replies
            .iter()
            .max_by_key(|m| m.stamp())
            .expect("quorum_rpc returns a full quorum");
        let (stamp, word) = (best.stamp(), best.word);
        if replies.iter().any(|m| m.stamp() < stamp) {
            // Read-repair: the replies diverged, so the maximum may be
            // durable on fewer than f + 1 replicas. Write it back
            // before returning or a later read could go backwards.
            self.repairs.fetch_add(1, Ordering::Relaxed);
            self.try_write_back(reg, stamp, word)?;
        }
        Ok((stamp, word))
    }

    /// Fallible ABD write: two phases (stamp query, quorum install).
    /// Returns the stamp the write landed under; when the ack quorum
    /// is in, `f + 1` replicas hold a stamp `>=` it. Returns
    /// [`Unavailable`] once the step deadline expires — the write may
    /// then be durable on up to `f` replicas (a later read-repair can
    /// still surface it), exactly like a timed-out write in any
    /// quorum system.
    pub fn try_abd_write(&self, reg: u32, word: u64) -> Result<WriteStamp, Unavailable> {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let replies = self.quorum_rpc(need, "write", reg, |op, from, to| Message {
            kind: MsgKind::ReadQuery,
            op,
            from,
            to,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        })?;
        let max = replies
            .iter()
            .map(|m| m.stamp())
            .max()
            .expect("quorum_rpc returns a full quorum");
        let stamp = max.next(self.client_id());
        self.try_write_back(reg, stamp, word)?;
        Ok(stamp)
    }

    /// One quorum write phase: install `(stamp, word)` on `f + 1`
    /// replicas and wait for all acks.
    fn try_write_back(&self, reg: u32, stamp: WriteStamp, word: u64) -> Result<(), Unavailable> {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let need = self.quorum();
        let acks = self.quorum_rpc(need, "write-back", reg, |op, from, to| Message {
            kind: MsgKind::Write,
            op,
            from,
            to,
            reg,
            seq: stamp.seq,
            writer: stamp.writer,
            word,
            expected: 0,
        })?;
        debug_assert!(acks.iter().all(|a| a.kind == MsgKind::WriteAck));
        Ok(())
    }

    /// Sends one request per target replica and collects `need`
    /// replies from distinct replicas, retransmitting (with a fresh op
    /// id and a widened target set) whenever the network runs dry.
    ///
    /// Every probe, pump, and backoff tick is one **client-local
    /// step**; the phase fails with [`Unavailable`] once the step
    /// count crosses [`ClusterConfig::deadline`]. Between attempts the
    /// client waits out a seeded exponential backoff
    /// (`2^min(attempt, CAP)` steps plus deterministic jitter hashed
    /// from `(plan seed, client, op, attempt)`) — the waiting ticks
    /// keep pumping the router, so a backed-off client still moves
    /// other clients' traffic instead of stalling the network.
    fn quorum_rpc(
        &self,
        need: usize,
        phase: &'static str,
        reg: u32,
        build: impl Fn(u64, u32, u32) -> Message,
    ) -> Result<Vec<Message>, Unavailable> {
        let client = self.client_id();
        let n = self.replicas.len();
        debug_assert!(need <= n);
        let deadline = self.config.deadline;
        let mut attempt = 0u64;
        let mut steps = 0u64;
        loop {
            let op = self.next_op.fetch_add(1, Ordering::Relaxed);
            // Snapshot the wipe epoch before the first probe of this
            // attempt; re-checked after the last reply.
            let epoch = self.wipe_epoch.load(Ordering::Acquire);
            // Rotate the window by client id (load spreading) and by
            // attempt, widening until every replica is targeted.
            let width = (need + attempt as usize).min(n);
            let start = (client as usize + attempt as usize) % n;
            let direct = self.config.plan.is_fault_free();
            let mut replies: Vec<Message> = Vec::with_capacity(need);
            if direct {
                for i in 0..width {
                    let to = ((start + i) % n) as u32;
                    steps += 1;
                    if let Some(reply) = self.interact_direct(build(op, client, to)) {
                        replies.push(reply);
                        if replies.len() == need {
                            break;
                        }
                    }
                }
            } else {
                for i in 0..width {
                    let to = ((start + i) % n) as u32;
                    steps += 1;
                    self.router.send(build(op, client, to));
                }
                self.collect_replies(client, op, need, &mut replies, &mut steps);
            }
            // The ack-window wipe check: a reply only proves its
            // replica held the state *when it answered*. If a replica
            // was wiped after answering — and resynced from others
            // that had not all seen this phase's write — counting its
            // reply would overstate durability (a write-back could
            // "complete" on fewer than `f + 1` surviving copies, the
            // exact regression the skip-resync model counterexample
            // exhibits at the protocol level). An unchanged epoch
            // proves no wipe overlapped the window, so every counted
            // reply is still standing; on a change the phase pays a
            // retry and re-earns its quorum. The deadline still bounds
            // the loop either way.
            if replies.len() == need && self.wipe_epoch.load(Ordering::Acquire) == epoch {
                if attempt > 0 {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(replies);
            }
            attempt += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            if steps >= deadline {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                self.unavailable.fetch_add(1, Ordering::Relaxed);
                return Err(Unavailable {
                    reg,
                    op: phase,
                    attempts: attempt,
                    steps,
                    deadline,
                    crashed: self.router.crashed(),
                    isolated: self.router.isolated(),
                });
            }
            // Seeded exponential backoff: deterministic per
            // (plan seed, client, op, attempt), so a replay with the
            // same schedule waits the same number of steps.
            let base = 1u64 << attempt.min(BACKOFF_CAP);
            let jitter = mix(self.config.plan.seed, client as u64, op, attempt) % base;
            let wait = (base + jitter).min(deadline.saturating_sub(steps));
            for _ in 0..wait {
                steps += 1;
                self.backoffs.fetch_add(1, Ordering::Relaxed);
                // Waiting ticks pump the router (Idle is cheap when
                // the network is empty).
                self.pump_dispatch();
            }
            std::thread::yield_now();
        }
    }

    /// Fault-free synchronous interaction: applies the handler inline
    /// (no queue), honoring partitions, crashes and the step hook.
    /// Returns `None` when either endpoint is isolated or crashed.
    fn interact_direct(&self, msg: Message) -> Option<Message> {
        if !(self.router.no_partition_fast() && self.router.no_crash_fast())
            && (self.router.is_blocked(msg.from) || self.router.is_blocked(msg.to))
        {
            return None;
        }
        self.router.fire_hook(&msg);
        let reply = self.replicas[msg.to as usize].handle(&msg);
        self.router.fire_hook(&reply);
        Some(reply)
    }

    /// Pumps the router once and dispatches the delivery:
    /// replica-bound requests are handled inline (the reply re-enters
    /// the network), client-bound replies land in the owner's mailbox.
    /// Returns `true` when the network was idle.
    fn pump_dispatch(&self) -> bool {
        match self.router.pump() {
            Pumped::Deliver(msg) => {
                if msg.to < Message::CLIENT_BASE {
                    let reply = self.replicas[msg.to as usize].handle(&msg);
                    self.router.send(reply);
                } else {
                    self.mailboxes
                        .lock()
                        .expect("mailbox lock")
                        .entry(msg.to)
                        .or_default()
                        .push(msg);
                }
                false
            }
            Pumped::Discarded => false,
            Pumped::Idle => true,
        }
    }

    /// Pumps the router until `need` distinct replicas answered `op`,
    /// or the network runs dry (returns `false`: time to retransmit).
    fn collect_replies(
        &self,
        client: u32,
        op: u64,
        need: usize,
        replies: &mut Vec<Message>,
        steps: &mut u64,
    ) -> bool {
        loop {
            self.drain_mailbox(client, op, replies);
            if replies.len() >= need {
                return true;
            }
            *steps += 1;
            if self.pump_dispatch() {
                // Another pumping thread may have deposited our
                // replies between the drain and the pump.
                self.drain_mailbox(client, op, replies);
                return replies.len() >= need;
            }
        }
    }

    /// Moves this client's current-op replies out of its mailbox,
    /// deduplicating by replica and dropping stale-op leftovers.
    fn drain_mailbox(&self, client: u32, op: u64, replies: &mut Vec<Message>) {
        let drained = {
            let mut boxes = self.mailboxes.lock().expect("mailbox lock");
            match boxes.get_mut(&client) {
                Some(inbox) if !inbox.is_empty() => std::mem::take(inbox),
                _ => return,
            }
        };
        for msg in drained {
            if msg.op == op && !replies.iter().any(|r| r.from == msg.from) {
                replies.push(msg);
            }
        }
    }

    // ---- step-addressed single-replica access (the QuorumTs path) ----

    /// Reads replica `replica`'s word for `reg` — one protocol step,
    /// delivered synchronously (the step hook still fires).
    pub(crate) fn replica_fetch(&self, replica: u32, reg: u32) -> u64 {
        let msg = Message {
            kind: MsgKind::ReadQuery,
            op: self.next_op.fetch_add(1, Ordering::Relaxed),
            from: self.client_id(),
            to: replica,
            reg,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        };
        self.router.fire_hook(&msg);
        let reply = self.replicas[replica as usize].handle(&msg);
        self.router.fire_hook(&reply);
        reply.word
    }

    /// Conditionally installs `new` over `expected` on one replica —
    /// one protocol step. Returns the word held before (equality with
    /// `expected` means it landed).
    pub(crate) fn replica_install(&self, replica: u32, reg: u32, expected: u64, new: u64) -> u64 {
        let msg = Message {
            kind: MsgKind::Install,
            op: self.next_op.fetch_add(1, Ordering::Relaxed),
            from: self.client_id(),
            to: replica,
            reg,
            seq: new as u32,
            writer: 0,
            word: new,
            expected,
        };
        self.router.fire_hook(&msg);
        let reply = self.replicas[replica as usize].handle(&msg);
        self.router.fire_hook(&reply);
        reply.word
    }
}

/// The replicated timestamp object whose steps are **messages**: the
/// real twin of [`QuorumModel`](crate::QuorumModel).
///
/// Each `getTS` reads `f + 1` replicas (rotating by pid), proposes
/// `max + 1`, then conditionally installs it on its write quorum —
/// every replica interaction is one gated step, so the model
/// checker's message interleavings replay against these real replicas
/// through the usual
/// [`StepGate`](ts_core::workload::StepGate) pacing.
///
/// [`QuorumTs::broken`] shrinks the write quorum to a single replica:
/// reads and writes then no longer intersect, and the explorer finds
/// the duplicate-timestamp interleaving — which replays here, on real
/// replicas, as the acceptance counterexample.
#[derive(Debug)]
pub struct QuorumTs {
    cluster: Arc<Cluster>,
    reg: u32,
    write_quorum: usize,
}

impl QuorumTs {
    /// Correct protocol: read and write quorums of `f + 1`.
    pub fn new(f: usize) -> Self {
        Self::with_write_quorum(Cluster::new(ClusterConfig::new(f)), f + 1)
    }

    /// Deliberately broken protocol: writes land on one replica only.
    pub fn broken(f: usize) -> Self {
        Self::with_write_quorum(Cluster::new(ClusterConfig::new(f)), 1)
    }

    /// A timestamp object on an existing cluster with an explicit
    /// write-quorum size (`1..=f + 1`).
    pub fn with_write_quorum(cluster: Arc<Cluster>, write_quorum: usize) -> Self {
        assert!(
            (1..=cluster.quorum()).contains(&write_quorum),
            "write quorum must be in 1..=f+1"
        );
        let reg = cluster.alloc_register(0);
        Self {
            cluster,
            reg,
            write_quorum,
        }
    }

    /// The cluster the object lives on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Whether this instance runs the intersecting (correct) quorums.
    pub fn is_correct(&self) -> bool {
        self.write_quorum == self.cluster.quorum()
    }

    /// `getTS` without gating.
    pub fn get_ts(&self, pid: usize) -> Timestamp {
        self.get_ts_paused(pid, || {})
    }

    /// `getTS` with a pause before **every replica interaction** (the
    /// message-step granularity the replayer schedules).
    pub fn get_ts_paused(&self, pid: usize, mut pause: impl FnMut()) -> Timestamp {
        let n = self.cluster.replicas();
        let read_quorum = self.cluster.quorum();
        let mut observed = Vec::with_capacity(read_quorum);
        for i in 0..read_quorum {
            pause();
            observed.push(self.cluster.replica_fetch(((pid + i) % n) as u32, self.reg));
        }
        let proposal = observed.iter().copied().max().expect("non-empty quorum") + 1;
        for (j, expected) in observed.iter().copied().take(self.write_quorum).enumerate() {
            let replica = ((pid + j) % n) as u32;
            let mut expected = expected;
            loop {
                pause();
                let prior = self
                    .cluster
                    .replica_install(replica, self.reg, expected, proposal);
                if prior == expected || prior >= proposal {
                    // Landed, or someone already installed >= ours.
                    break;
                }
                expected = prior;
            }
        }
        Timestamp::scalar(proposal)
    }

    /// Largest word any replica holds (observation probe for tests).
    pub fn read_max(&self) -> u64 {
        (0..self.cluster.replicas())
            .map(|r| self.cluster.replica(r).stored(self.reg).1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_read_write_round_trips() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(7);
        assert_eq!(cluster.abd_read(reg), (WriteStamp::INITIAL, 7));
        let stamp = cluster.abd_write(reg, 42);
        assert_eq!(stamp.seq, 1);
        let (read_stamp, word) = cluster.abd_read(reg);
        assert_eq!((read_stamp, word), (stamp, 42));
        // Fault-free reads of agreeing replicas never repair.
        assert_eq!(cluster.quorum_repairs(), 0);
    }

    #[test]
    fn writes_survive_any_minority_partition() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        // This thread's client id rotates its quorum window to start at
        // replica 1 — partition exactly that replica, so the write must
        // retry and widen past its preferred window.
        let start = cluster.client_id() as usize % cluster.replicas();
        cluster.router().partition(&[start as u32]);
        let stamp = cluster.abd_write(reg, 5);
        // f + 1 = 2 replicas hold the write despite the partition.
        let holders = (0..3)
            .filter(|&r| cluster.replica(r).stored(reg) == (stamp, 5))
            .count();
        assert!(holders >= 2, "only {holders} replicas hold the write");
        assert!(
            !cluster.router().isolated().is_empty(),
            "partition still active"
        );
        assert!(cluster.quorum_retries() > 0, "the partition forced retries");
        cluster.router().heal();
        assert_eq!(cluster.abd_read(reg).1, 5);
    }

    #[test]
    fn divergent_replicas_are_read_repaired() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        // Pick the replica just *outside* this client's preferred
        // window, partition it, write: it stays stale.
        let n = cluster.replicas();
        let start = cluster.client_id() as usize % n;
        let stale = ((start + 2) % n) as u32;
        cluster.router().partition(&[stale]);
        cluster.abd_write(reg, 9);
        cluster.router().heal();
        assert_eq!(cluster.replica(stale as usize).stored(reg).1, 0, "stale");
        // A reader whose window covers the stale replica observes
        // divergent replies and repairs before returning. Client ids
        // are per-thread, so mint readers until one's window hits it.
        let repaired = std::thread::scope(|s| {
            let mut hit = false;
            for _ in 0..n {
                hit |= s
                    .spawn(|| {
                        let me = cluster.client_id() as usize % n;
                        assert_eq!(cluster.abd_read(reg).1, 9, "no stale read, ever");
                        me == stale as usize || (me + 1) % n == stale as usize
                    })
                    .join()
                    .expect("reader thread");
            }
            hit
        });
        assert!(repaired, "some reader's window covered the stale replica");
        assert!(cluster.quorum_repairs() >= 1);
        assert_eq!(cluster.replica(stale as usize).stored(reg).1, 9, "repaired");
    }

    #[test]
    fn lossy_network_still_linearizes() {
        let plan = FaultPlan {
            seed: 11,
            drop_permille: 200,
            dup_permille: 100,
            delay_max: 3,
            reorder: true,
            ..FaultPlan::default()
        };
        let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
        let reg = cluster.alloc_register(0);
        for v in 1..=20u64 {
            cluster.abd_write(reg, v);
            assert_eq!(cluster.abd_read(reg).1, v, "read your own write");
        }
        let stats = cluster.net_stats();
        assert!(stats.dropped > 0, "the plan actually dropped: {stats:?}");
    }

    #[test]
    fn ambient_scope_nests_and_unwinds() {
        let outer = Cluster::new(ClusterConfig::new(0));
        let inner = Cluster::new(ClusterConfig::new(1));
        assert!(ambient_cluster().is_none());
        with_cluster(&outer, || {
            assert_eq!(ambient_cluster().expect("outer").uid, outer.uid);
            with_cluster(&inner, || {
                assert_eq!(ambient_cluster().expect("inner").uid, inner.uid);
            });
            assert_eq!(ambient_cluster().expect("outer again").uid, outer.uid);
        });
        assert!(ambient_cluster().is_none());
    }

    #[test]
    fn quorum_ts_is_monotone_per_thread() {
        let ts = QuorumTs::new(1);
        let mut last = None;
        for _ in 0..10 {
            let t = ts.get_ts(0);
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "{prev:?} !< {t:?}");
            }
            last = Some(t);
        }
        assert_eq!(ts.read_max(), 10);
    }

    #[test]
    fn broken_quorum_ts_duplicates_stamps_across_disjoint_windows() {
        let ts = QuorumTs::broken(1);
        assert!(!ts.is_correct());
        // With a write quorum of 1, pid 0 installs only on replica 0 —
        // and pid 1's read window {1, 2} never sees it. Two
        // *non-overlapping* calls return the same timestamp: exactly
        // the violation the model explorer minimizes.
        let a = ts.get_ts(0);
        let b = ts.get_ts(1);
        assert_eq!(a, b, "non-intersecting quorums duplicate stamps");
        // A window that does cover replica 0 stays ordered.
        let c = ts.get_ts(2);
        assert!(Timestamp::compare(&a, &c));
    }

    #[test]
    fn crash_minority_write_survives_and_restart_resyncs() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        // Crash the client's preferred first replica, so the write must
        // retry and widen past it (degraded, not down).
        let down = (cluster.client_id() as usize % cluster.replicas()) as u32;
        cluster.crash(down);
        assert_eq!(cluster.crashed(), vec![down]);
        let stamp = cluster.abd_write(reg, 5);
        assert!(cluster.quorum_degraded() > 0, "first window hit the crash");
        // Both live replicas hold the write; the crashed one has none.
        let holders = (0..3)
            .filter(|&r| r != down as usize)
            .filter(|&r| cluster.replica(r).stored(reg) == (stamp, 5))
            .count();
        assert_eq!(holders, 2);
        assert_eq!(cluster.replica(down as usize).stored(reg).1, 0);
        // Restart with retained state: resync catches the replica up
        // before any client can reach it again.
        cluster.restart(down, RestartMode::Retain);
        assert!(cluster.crashed().is_empty());
        assert_eq!(cluster.replica(down as usize).stored(reg), (stamp, 5));
        assert!(cluster.resynced_registers() >= 1);
        assert_eq!(cluster.abd_read(reg).1, 5);
        assert_eq!(cluster.replica_crashes(), 1);
        assert_eq!(cluster.replica_restarts(), 1);
    }

    #[test]
    fn crash_majority_returns_unavailable_within_the_deadline() {
        let cluster = Cluster::new(ClusterConfig::new(1).with_deadline(512));
        let reg = cluster.alloc_register(3);
        cluster.crash(0);
        cluster.crash(1);
        let err = cluster.try_abd_write(reg, 9).expect_err("no quorum up");
        assert_eq!(err.crashed, vec![0, 1]);
        assert_eq!(err.deadline, 512);
        // The budget is exhausted promptly: at most one extra probe
        // window past the deadline, never an unbounded spin.
        assert!(err.steps >= 512);
        assert!(err.steps <= 512 + cluster.replicas() as u64);
        assert_eq!(cluster.quorum_timeouts(), 1);
        assert_eq!(cluster.quorum_unavailable(), 1);
        assert!(cluster.quorum_backoff_steps() > 0);
        // Reads fail too — and recover the moment quorum returns.
        cluster.try_abd_read(reg).expect_err("still no quorum");
        cluster.restart(1, RestartMode::Retain);
        let stamp = cluster.try_abd_write(reg, 9).expect("quorum restored");
        assert_eq!(cluster.try_abd_read(reg), Ok((stamp, 9)));
    }

    #[test]
    fn wiped_restart_rebuilds_state_from_the_live_majority() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        let s1 = cluster.abd_write(reg, 11);
        cluster.crash(2);
        let s2 = cluster.abd_write(reg, 22);
        assert!(s2 > s1);
        cluster.restart(2, RestartMode::Wipe);
        assert_eq!(cluster.replica(2).wipes(), 1);
        // The wiped replica rejoined holding the newest acked write.
        assert_eq!(cluster.replica(2).stored(reg), (s2, 22));
        let (stamp, word) = cluster.abd_read(reg);
        assert!(stamp >= s2, "no reader ever observes a regression");
        assert_eq!(word, 22);
    }

    #[test]
    fn restart_skip_resync_leaves_a_wiped_replica_amnesiac() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        cluster.abd_write(reg, 7);
        let holder = (0..3)
            .find(|&r| cluster.replica(r).stored(reg).1 == 7)
            .expect("a quorum holds the write") as u32;
        // Broken path: the wiped holder rejoins remembering nothing.
        cluster.crash(holder);
        cluster.restart_skip_resync(holder, RestartMode::Wipe);
        assert_eq!(
            cluster.replica(holder as usize).stored(reg),
            (WriteStamp::INITIAL, 0),
            "skip-resync rejoins with amnesia — the unsafe variant"
        );
        // The correct path repairs it (Retain + resync still sweeps).
        cluster.crash(holder);
        cluster.restart(holder, RestartMode::Retain);
        assert_eq!(cluster.replica(holder as usize).stored(reg).1, 7);
    }

    #[test]
    #[should_panic(expected = "resync of wiped replica")]
    fn wipe_restart_without_a_live_quorum_is_refused() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        cluster.alloc_register(0);
        cluster.crash(0);
        cluster.crash(1);
        // Wiping 0 now could destroy the only live copy of a write
        // acked on {0, 1}; the cluster refuses instead of losing data.
        cluster.restart(0, RestartMode::Wipe);
    }

    #[test]
    fn deadline_exhaustion_replays_bit_identically() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::new(1).with_deadline(256));
            let reg = cluster.alloc_register(0);
            cluster.crash(0);
            cluster.crash(2);
            cluster.try_abd_read(reg).expect_err("no quorum")
        };
        assert_eq!(run(), run(), "same seed, same schedule, same diagnosis");
    }

    #[test]
    fn crashes_block_the_queued_path_too() {
        // A lossy plan forces the router path; crashing a majority must
        // still produce Unavailable (discards, not hangs).
        let plan = FaultPlan {
            seed: 3,
            drop_permille: 100,
            ..FaultPlan::default()
        };
        let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan).with_deadline(2048));
        let reg = cluster.alloc_register(1);
        cluster.abd_write(reg, 4);
        cluster.crash(0);
        cluster.crash(1);
        let err = cluster.try_abd_read(reg).expect_err("no quorum");
        assert_eq!(err.crashed, vec![0, 1]);
        assert!(cluster.net_stats().crash_discarded > 0);
        cluster.restart(0, RestartMode::Retain);
        assert_eq!(cluster.try_abd_read(reg).expect("healed").1, 4);
    }

    #[test]
    fn step_hook_counts_quorum_ts_messages() {
        use std::sync::atomic::AtomicU64 as Count;
        let cluster = Cluster::new(ClusterConfig::new(1));
        let ts = QuorumTs::with_write_quorum(Arc::clone(&cluster), 2);
        let count = Arc::new(Count::new(0));
        let c2 = Arc::clone(&count);
        cluster.router().set_step_hook(Some(Box::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        })));
        ts.get_ts(0);
        // 2 reads + 2 installs, each a request + reply pair.
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn wipe_during_the_ack_window_forces_a_phase_retry() {
        use std::sync::atomic::AtomicBool;
        // The ack-window race the wipe epoch closes: a replica acks
        // the write-back, then crashes and wipe-restarts before the
        // client has collected its remaining acks. Its resync ran
        // against others that had not yet seen this write, so the
        // already-counted ack no longer stands for a surviving copy —
        // without the guard the write would "complete" while held by
        // fewer than f + 1 replicas.
        let cluster = Cluster::new(ClusterConfig::new(1));
        let reg = cluster.alloc_register(0);
        let fired = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&cluster);
        let f2 = Arc::clone(&fired);
        cluster
            .router()
            .set_step_hook(Some(Box::new(move |msg: &Message| {
                if msg.kind == MsgKind::WriteAck && !f2.swap(true, Ordering::SeqCst) {
                    c2.crash(msg.from);
                    c2.restart(msg.from, RestartMode::Wipe);
                }
            })));
        let stamp = cluster.abd_write(reg, 9);
        cluster.router().set_step_hook(None);
        assert!(fired.load(Ordering::SeqCst), "the write-back acked");
        let wipes: u64 = (0..3).map(|r| cluster.replica(r).wipes()).sum();
        assert_eq!(wipes, 1, "exactly the first acker was wiped");
        // The guard discarded the poisoned attempt and re-earned a
        // full quorum: f + 1 = 2 replicas hold the write at
        // quiescence even though one acker lost its copy mid-phase.
        let holders = (0..3)
            .filter(|&r| cluster.replica(r).stored(reg) == (stamp, 9))
            .count();
        assert!(holders >= 2, "only {holders} replicas hold the write");
        assert!(
            cluster.quorum_retries() > 0,
            "the mid-window wipe must cost the phase a retry"
        );
    }
}
