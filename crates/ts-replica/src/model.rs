//! The model twin of [`QuorumTs`](crate::QuorumTs): quorum replication
//! as a [`ts_model`] algorithm, one register per replica.
//!
//! The mapping is literal. Model register `r` *is* replica `r`'s
//! stored word; a [`Poised::Read`] is a `ReadQuery`/`ReadReply`
//! exchange; a [`Poised::Cas`] is an `Install`/`InstallReply` exchange
//! (the replica's conditional install is exactly a CAS on its word,
//! and the reply carries the prior word exactly as `observe` does).
//! One model step = one message delivery, so the explorer enumerates
//! **message interleavings**, and a counterexample schedule replays
//! step-for-step against real [`Replica`](crate::Replica)s through the
//! standard trace machinery.
//!
//! [`QuorumModel::broken`] is the deliberately faulty variant (write
//! quorum of 1): reads and writes stop intersecting, and two
//! non-overlapping `getTS` calls can read disjoint replica sets and
//! return equal timestamps. The explorer finds that interleaving in a
//! few dozen states; the minimized trace is checked into the replay
//! corpus.
//!
//! # Crash-stop faults
//!
//! [`QuorumModel::crash_stop`] adds an *adversary process* whose one
//! "operation" is an environment event, not a `getTS` call: it writes
//! the crash sentinel [`BOT`] (`u64::MAX`) into one replica-register,
//! modelling a crash-stop failure of that replica. Client machines
//! become crash-aware: a read observing [`BOT`] does not count toward
//! the read quorum (the client *widens* to the next replica, exactly
//! as the real client's retry loop widens its probe window past a dead
//! replica), and an install CAS observing [`BOT`] re-targets the next
//! unused replica. Safety under crash-stop follows because every
//! register sequence stays monotone (the sentinel is `u64::MAX`, and
//! nothing ever lowers a register), so the standard quorum-
//! intersection argument goes through — the explorer confirms it
//! exhaustively.
//!
//! [`QuorumModel::crash_skip_resync`] is the crash twin of the real
//! cluster's `restart_skip_resync`: after the crash the adversary
//! restarts the replica **amnesiac** — a second step writes `0` (the
//! initial value) over the sentinel, with no catch-up from its peers.
//! That one omission re-opens the duplicate-timestamp race: a write
//! acked by a quorum containing the crashed replica loses a live copy,
//! and a later reader whose quorum hits the amnesiac replica (plus an
//! untouched one) sees only initial values and proposes an
//! already-issued timestamp. The explorer finds the interleaving; the
//! minimized trace joins the replay corpus, and the real cluster's
//! resync sweep is exactly the mechanism that closes it.
//!
//! The adversary's op is excluded from the timestamp property via
//! [`Algorithm::op_observable`] — a crash has no timestamp — but its
//! steps still interleave and order client ops through the history.

use ts_core::Timestamp;
use ts_model::{Algorithm, Machine, Poised, ProcId};

/// Crash sentinel: the value a crashed replica-register holds while
/// the replica is down. `u64::MAX` keeps register sequences monotone
/// under crash-stop and can never be a real proposal (proposals are
/// `max + 1` over observed non-sentinel values).
pub const BOT: u64 = u64::MAX;

/// How replica crashes appear in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashMode {
    /// No adversary process; the original fault-free model.
    None,
    /// Crash-stop: one replica is killed and never returns. Safe.
    Stop,
    /// Crash, then an amnesiac restart with **no resync** — the
    /// register returns holding its initial value. Unsafe; yields the
    /// `quorum_crash_skip_resync` counterexample.
    SkipResync,
}

/// One `getTS` call of the replicated timestamp protocol, as a step
/// machine. See the module docs for the message ↔ step mapping.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuorumMachine {
    pid: usize,
    replicas: usize,
    read_quorum: usize,
    write_quorum: usize,
    /// Whether reads/installs must treat [`BOT`] as "replica crashed"
    /// and widen past it. Dormant (and unreachable) without a crash
    /// adversary in the model.
    bot_aware: bool,
    /// Rotation-window offsets that answered with a real (non-[`BOT`])
    /// value, in read order; installs target `window[..write_quorum]`.
    window: Vec<usize>,
    /// Values observed at the corresponding `window` slots.
    observed: Vec<u64>,
    /// Next unconsidered rotation offset (for widening installs).
    scan: usize,
    proposal: u64,
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Reading replica `pid + idx` (mod replicas).
    Read { idx: usize },
    /// Conditionally installing the proposal on write-set member `j`
    /// (an index into `window`).
    Install { j: usize, expected: u64 },
    /// Adversary: writing [`BOT`] into register `target` (the crash).
    CrashBot { target: usize },
    /// Adversary: amnesiac restart — writing the initial value over
    /// the sentinel with no resync.
    CrashRestore { target: usize },
    /// Returning the proposal.
    Done,
}

impl QuorumMachine {
    fn new(pid: usize, replicas: usize, read_quorum: usize, write_quorum: usize) -> Self {
        Self {
            pid,
            replicas,
            read_quorum,
            write_quorum,
            bot_aware: false,
            window: Vec::with_capacity(read_quorum),
            observed: Vec::with_capacity(read_quorum),
            scan: 0,
            proposal: 0,
            phase: Phase::Read { idx: 0 },
        }
    }

    /// The crash adversary's machine: one crash of register `target`,
    /// followed by an amnesiac restore iff `restore` (the skip-resync
    /// variant). `write_quorum` doubles as the restore flag — the
    /// adversary never installs.
    fn crasher(target: usize, replicas: usize, restore: bool) -> Self {
        Self {
            pid: target,
            replicas,
            read_quorum: 0,
            write_quorum: restore as usize,
            bot_aware: true,
            window: Vec::new(),
            observed: Vec::new(),
            scan: 0,
            proposal: 0,
            phase: Phase::CrashBot { target },
        }
    }

    /// Replica backing read-set slot `i` (the rotation window).
    fn reg(&self, i: usize) -> usize {
        (self.pid + i) % self.replicas
    }

    /// Enters install step `j`, or completes when the write set is
    /// exhausted.
    fn begin_install(&mut self, j: usize) {
        self.phase = if j < self.write_quorum {
            Phase::Install {
                j,
                expected: self.observed[j],
            }
        } else {
            Phase::Done
        };
    }
}

impl Machine for QuorumMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::Read { idx } => Poised::Read {
                reg: self.reg(*idx),
            },
            Phase::Install { j, expected } => Poised::Cas {
                reg: self.reg(self.window[*j]),
                expected: *expected,
                new: self.proposal,
            },
            Phase::CrashBot { target } => Poised::Write {
                reg: *target,
                value: BOT,
            },
            Phase::CrashRestore { target } => Poised::Write {
                reg: *target,
                value: 0,
            },
            Phase::Done => Poised::Done(Timestamp::scalar(self.proposal)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        match self.phase.clone() {
            Phase::Read { idx } => {
                let value = observed.expect("a read observes a value");
                self.scan = idx + 1;
                if self.bot_aware && value == BOT {
                    // Crashed replica: widen the read window past it,
                    // exactly as the real client widens its probe
                    // window. A single crash adversary guarantees a
                    // full quorum of live replicas remains.
                    assert!(
                        idx + 1 < self.replicas,
                        "model supports one crashed replica"
                    );
                    self.phase = Phase::Read { idx: idx + 1 };
                    return;
                }
                self.window.push(idx);
                self.observed.push(value);
                if self.observed.len() < self.read_quorum {
                    self.phase = Phase::Read { idx: idx + 1 };
                } else {
                    self.proposal = self.observed.iter().copied().max().expect("non-empty") + 1;
                    self.begin_install(0);
                }
            }
            Phase::Install { j, expected } => {
                let prior = observed.expect("a CAS observes the prior value");
                if self.bot_aware && prior == BOT {
                    // The replica crashed after we read it: re-target
                    // the install at the next unused replica (expected
                    // 0 is a guess; the CAS retry loop converges).
                    assert!(
                        self.scan < self.replicas,
                        "model supports one crashed replica"
                    );
                    self.window[j] = self.scan;
                    self.scan += 1;
                    self.phase = Phase::Install { j, expected: 0 };
                } else if prior == expected || prior >= self.proposal {
                    // Landed, or the replica already holds >= ours —
                    // either way this replica is covered.
                    self.begin_install(j + 1);
                } else {
                    self.phase = Phase::Install { j, expected: prior };
                }
            }
            Phase::CrashBot { target } => {
                // `crasher()` leaves `write_quorum = 0` for crash-stop
                // (no restore step) and sets it for skip-resync.
                self.phase = if self.write_quorum > 0 {
                    Phase::CrashRestore { target }
                } else {
                    Phase::Done
                };
            }
            Phase::CrashRestore { .. } => self.phase = Phase::Done,
            Phase::Done => panic!("observe called on a completed machine"),
        }
    }

    fn may_read(&self) -> Option<Vec<usize>> {
        if self.bot_aware {
            // Widening may touch any replica; the adversary reads none.
            return Some(match &self.phase {
                Phase::CrashBot { .. } | Phase::CrashRestore { .. } | Phase::Done => Vec::new(),
                _ => (0..self.replicas).collect(),
            });
        }
        // CAS observations count as reads. While still reading, the
        // sound over-approximation is the whole read window (the write
        // window is a prefix of it, and installs on already-read slots
        // are still ahead); mid-install it shrinks to the remaining
        // write window.
        let range = match &self.phase {
            Phase::Read { .. } => 0..self.read_quorum,
            Phase::Install { j, .. } => *j..self.write_quorum,
            _ => 0..0,
        };
        Some(range.map(|i| self.reg(i)).collect())
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        if self.bot_aware {
            return Some(match &self.phase {
                Phase::CrashBot { target } | Phase::CrashRestore { target } => vec![*target],
                Phase::Done => Vec::new(),
                _ => (0..self.replicas).collect(),
            });
        }
        let range = match &self.phase {
            Phase::Read { .. } => 0..self.write_quorum,
            Phase::Install { j, .. } => *j..self.write_quorum,
            _ => 0..0,
        };
        Some(range.map(|i| self.reg(i)).collect())
    }
}

/// The replicated timestamp algorithm over `2f + 1` replica-registers;
/// the model twin of [`QuorumTs`](crate::QuorumTs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumModel {
    n: usize,
    f: usize,
    write_quorum: usize,
    crash: CrashMode,
}

impl QuorumModel {
    /// Correct protocol for `n` processes tolerating `f` failures:
    /// read and write quorums of `f + 1` over `2f + 1` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, f: usize) -> Self {
        Self::with_write_quorum(n, f, f + 1)
    }

    /// The deliberately broken variant: writes land on one replica.
    pub fn broken(n: usize, f: usize) -> Self {
        Self::with_write_quorum(n, f, 1)
    }

    /// Explicit write-quorum size (`1..=f + 1`).
    pub fn with_write_quorum(n: usize, f: usize, write_quorum: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            (1..=f + 1).contains(&write_quorum),
            "write quorum must be in 1..=f+1"
        );
        Self {
            n,
            f,
            write_quorum,
            crash: CrashMode::None,
        }
    }

    /// Correct quorums plus a crash-stop adversary: an extra process
    /// (pid `n`) whose single op kills replica-register `f` with the
    /// [`BOT`] sentinel. Clients widen past the dead replica; the
    /// explorer verifies safety exhaustively (see the module docs for
    /// why monotonicity makes the quorum argument survive).
    pub fn crash_stop(n: usize, f: usize) -> Self {
        let mut model = Self::new(n, f);
        model.crash = CrashMode::Stop;
        model
    }

    /// Correct quorums plus a crash **and an amnesiac restart with no
    /// resync**: after the [`BOT`] write, the adversary restores the
    /// register to its initial value. The real cluster's
    /// `restart_skip_resync` twin — the explorer finds the duplicate-
    /// timestamp counterexample this reintroduces.
    pub fn crash_skip_resync(n: usize, f: usize) -> Self {
        let mut model = Self::new(n, f);
        model.crash = CrashMode::SkipResync;
        model
    }

    /// Tolerated failures.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Whether quorums intersect *and* recovery resyncs (the protocol
    /// is correct).
    pub fn is_correct(&self) -> bool {
        self.write_quorum == self.f + 1 && self.crash != CrashMode::SkipResync
    }

    /// The crash adversary's process id, when the model has one.
    pub fn crash_pid(&self) -> Option<ProcId> {
        (self.crash != CrashMode::None).then_some(self.n)
    }

    /// The replica-register the adversary crashes.
    fn crash_target(&self) -> usize {
        self.f
    }
}

impl Algorithm for QuorumModel {
    type Machine = QuorumMachine;

    fn processes(&self) -> usize {
        self.n + usize::from(self.crash != CrashMode::None)
    }

    fn registers(&self) -> usize {
        2 * self.f + 1
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> QuorumMachine {
        assert!(pid < self.processes(), "pid {pid} out of range");
        if Some(pid) == self.crash_pid() {
            return QuorumMachine::crasher(
                self.crash_target(),
                self.registers(),
                self.crash == CrashMode::SkipResync,
            );
        }
        let mut machine = QuorumMachine::new(pid, self.registers(), self.f + 1, self.write_quorum);
        machine.bot_aware = self.crash != CrashMode::None;
        machine
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        let r = self.registers();
        if Some(pid) == self.crash_pid() {
            return Some(Vec::new());
        }
        if self.crash != CrashMode::None {
            // Widening clients may read any replica.
            return Some((0..r).collect());
        }
        Some((0..self.f + 1).map(|i| (pid + i) % r).collect())
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        let r = self.registers();
        if Some(pid) == self.crash_pid() {
            return Some(vec![self.crash_target()]);
        }
        if self.crash != CrashMode::None {
            return Some((0..r).collect());
        }
        Some((0..self.write_quorum).map(|i| (pid + i) % r).collect())
    }

    fn op_observable(&self, pid: ProcId) -> bool {
        // The adversary's "op" is an environment event (crash /
        // amnesiac restart), not a getTS call: exclude it from the
        // timestamp property. Its steps still order client ops.
        Some(pid) != self.crash_pid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{CacheMode, Explorer, System};

    /// Runs `pid` solo until its current op completes, returning the
    /// output.
    fn run_solo(sys: &mut System<QuorumModel>, pid: usize) -> Timestamp {
        loop {
            match sys.step(pid).expect("step") {
                ts_model::StepOutcome::Completed { output } => return output,
                _ => continue,
            }
        }
    }

    #[test]
    fn sequential_calls_count_up() {
        let mut sys = System::new(QuorumModel::new(2, 1));
        let a = run_solo(&mut sys, 0);
        let b = run_solo(&mut sys, 1);
        let c = run_solo(&mut sys, 0);
        assert_eq!(a, Timestamp::scalar(1));
        assert_eq!(b, Timestamp::scalar(2));
        assert_eq!(c, Timestamp::scalar(3));
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn correct_quorums_pass_exhaustive_exploration() {
        let report = Explorer::new(QuorumModel::new(2, 1), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert!(report.executions > 0);
    }

    #[test]
    fn broken_write_quorum_yields_a_counterexample() {
        let model = QuorumModel::broken(2, 1);
        let report = Explorer::new(model, 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .run();
        let violation = report.violation.expect("wq=1 must violate");
        // The schedule reproduces deterministically.
        let report2 = Explorer::new(model, 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .run();
        assert_eq!(
            report2.violation.expect("still violates").schedule,
            violation.schedule
        );
    }

    #[test]
    fn dpor_agrees_with_the_ground_truth_on_the_broken_model() {
        let model = QuorumModel::broken(2, 1);
        let full = Explorer::new(model, 1).with_cache(CacheMode::None).run();
        let dpor = Explorer::new(model, 1).run();
        assert_eq!(full.violation.is_some(), dpor.violation.is_some());
    }

    #[test]
    fn footprints_cover_the_rotation_windows() {
        let model = QuorumModel::new(2, 1);
        assert_eq!(model.op_may_read(0), Some(vec![0, 1]));
        assert_eq!(model.op_may_read(1), Some(vec![1, 2]));
        assert_eq!(model.op_may_write(1), Some(vec![1, 2]));
        let broken = QuorumModel::broken(2, 1);
        assert_eq!(broken.op_may_write(1), Some(vec![1]));

        let machine = model.invoke(1, 0);
        assert_eq!(machine.may_read(), Some(vec![1, 2]));
        assert_eq!(machine.may_write(), Some(vec![1, 2]));
    }

    #[test]
    fn crash_stop_passes_exhaustive_exploration() {
        // Two clients, one crash-stop adversary: the explorer checks
        // every interleaving of the crash against both getTS calls.
        let report = Explorer::new(QuorumModel::crash_stop(2, 1), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert!(report.executions > 0);
    }

    #[test]
    fn skip_resync_restart_yields_a_counterexample() {
        let model = QuorumModel::crash_skip_resync(2, 1);
        assert!(!model.is_correct());
        let report = Explorer::new(model, 1).run();
        let violation = report.violation.expect("amnesiac restart must violate");
        // The schedule reproduces deterministically.
        let report2 = Explorer::new(model, 1).run();
        assert_eq!(
            report2.violation.expect("still violates").schedule,
            violation.schedule
        );
    }

    #[test]
    fn widening_reads_skip_the_crash_sentinel() {
        let model = QuorumModel::crash_stop(2, 1);
        let mut m = model.invoke(0, 0);
        // First read hits the crashed replica: widen, don't count it.
        assert_eq!(m.poised(), Poised::Read { reg: 0 });
        m.observe(Some(BOT));
        assert_eq!(m.poised(), Poised::Read { reg: 1 });
        m.observe(Some(3));
        assert_eq!(m.poised(), Poised::Read { reg: 2 });
        m.observe(Some(0));
        // Proposal 4; installs target the *live* window {1, 2}.
        match m.poised() {
            Poised::Cas { reg, expected, new } => {
                assert_eq!((reg, expected, new), (1, 3, 4));
            }
            other => panic!("expected a CAS, got {other:?}"),
        }
    }

    #[test]
    fn widening_installs_retarget_a_freshly_crashed_replica() {
        let model = QuorumModel::crash_stop(2, 1);
        let mut m = model.invoke(0, 0);
        m.observe(Some(0)); // reg 0
        m.observe(Some(0)); // reg 1 → proposal 1, installs on {0, 1}
        m.observe(Some(0)); // CAS reg 0 lands
                            // Replica 1 crashed between our read and the install: the CAS
                            // observes the sentinel and the install re-targets reg 2.
        m.observe(Some(BOT));
        match m.poised() {
            Poised::Cas { reg, expected, new } => {
                assert_eq!((reg, expected, new), (2, 0, 1));
            }
            other => panic!("expected a widened CAS, got {other:?}"),
        }
        m.observe(Some(0));
        assert_eq!(m.poised(), Poised::Done(Timestamp::scalar(1)));
    }

    #[test]
    fn crash_adversary_is_excluded_from_the_property_but_footprinted() {
        let model = QuorumModel::crash_skip_resync(2, 1);
        assert_eq!(model.processes(), 3);
        assert_eq!(model.crash_pid(), Some(2));
        assert!(model.op_observable(0));
        assert!(model.op_observable(1));
        assert!(!model.op_observable(2));
        // Adversary footprint: writes only the target register.
        assert_eq!(model.op_may_read(2), Some(vec![]));
        assert_eq!(model.op_may_write(2), Some(vec![1]));
        // Widening clients may touch anything.
        assert_eq!(model.op_may_read(0), Some(vec![0, 1, 2]));
        let crasher = model.invoke(2, 0);
        assert_eq!(crasher.poised(), Poised::Write { reg: 1, value: BOT });
        assert_eq!(crasher.may_write(), Some(vec![1]));
        assert_eq!(crasher.may_read(), Some(vec![]));
    }

    #[test]
    fn machine_retries_a_lost_cas_with_the_observed_value() {
        let mut m = QuorumModel::new(1, 1).invoke(0, 0);
        // Reads of replicas 0 and 1 observe 0 → proposal 1.
        m.observe(Some(0));
        m.observe(Some(0));
        match m.poised() {
            Poised::Cas { reg, expected, new } => {
                assert_eq!((reg, expected, new), (0, 0, 1));
            }
            other => panic!("expected a CAS, got {other:?}"),
        }
        // Someone raced the register from 0 to 5: retry... no — 5 >= 1
        // means the replica is already past us; move on.
        m.observe(Some(5));
        match m.poised() {
            Poised::Cas { reg, expected, .. } => assert_eq!((reg, expected), (1, 0)),
            other => panic!("expected the second install, got {other:?}"),
        }
        m.observe(Some(0));
        assert_eq!(m.poised(), Poised::Done(Timestamp::scalar(1)));
    }
}
