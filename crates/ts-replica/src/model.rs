//! The model twin of [`QuorumTs`](crate::QuorumTs): quorum replication
//! as a [`ts_model`] algorithm, one register per replica.
//!
//! The mapping is literal. Model register `r` *is* replica `r`'s
//! stored word; a [`Poised::Read`] is a `ReadQuery`/`ReadReply`
//! exchange; a [`Poised::Cas`] is an `Install`/`InstallReply` exchange
//! (the replica's conditional install is exactly a CAS on its word,
//! and the reply carries the prior word exactly as `observe` does).
//! One model step = one message delivery, so the explorer enumerates
//! **message interleavings**, and a counterexample schedule replays
//! step-for-step against real [`Replica`](crate::Replica)s through the
//! standard trace machinery.
//!
//! [`QuorumModel::broken`] is the deliberately faulty variant (write
//! quorum of 1): reads and writes stop intersecting, and two
//! non-overlapping `getTS` calls can read disjoint replica sets and
//! return equal timestamps. The explorer finds that interleaving in a
//! few dozen states; the minimized trace is checked into the replay
//! corpus.

use ts_core::Timestamp;
use ts_model::{Algorithm, Machine, Poised, ProcId};

/// One `getTS` call of the replicated timestamp protocol, as a step
/// machine. See the module docs for the message ↔ step mapping.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuorumMachine {
    pid: usize,
    replicas: usize,
    read_quorum: usize,
    write_quorum: usize,
    observed: Vec<u64>,
    proposal: u64,
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Reading replica `pid + idx` (mod replicas).
    Read { idx: usize },
    /// Conditionally installing the proposal on write-set member `j`.
    Install { j: usize, expected: u64 },
    /// Returning the proposal.
    Done,
}

impl QuorumMachine {
    fn new(pid: usize, replicas: usize, read_quorum: usize, write_quorum: usize) -> Self {
        Self {
            pid,
            replicas,
            read_quorum,
            write_quorum,
            observed: Vec::with_capacity(read_quorum),
            proposal: 0,
            phase: Phase::Read { idx: 0 },
        }
    }

    /// Replica backing read-set slot `i` (the rotation window).
    fn reg(&self, i: usize) -> usize {
        (self.pid + i) % self.replicas
    }

    /// Enters install step `j`, or completes when the write set is
    /// exhausted.
    fn begin_install(&mut self, j: usize) {
        self.phase = if j < self.write_quorum {
            Phase::Install {
                j,
                expected: self.observed[j],
            }
        } else {
            Phase::Done
        };
    }
}

impl Machine for QuorumMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::Read { idx } => Poised::Read {
                reg: self.reg(*idx),
            },
            Phase::Install { j, expected } => Poised::Cas {
                reg: self.reg(*j),
                expected: *expected,
                new: self.proposal,
            },
            Phase::Done => Poised::Done(Timestamp::scalar(self.proposal)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        match self.phase.clone() {
            Phase::Read { idx } => {
                let value = observed.expect("a read observes a value");
                self.observed.push(value);
                if idx + 1 < self.read_quorum {
                    self.phase = Phase::Read { idx: idx + 1 };
                } else {
                    self.proposal = self.observed.iter().copied().max().expect("non-empty") + 1;
                    self.begin_install(0);
                }
            }
            Phase::Install { j, expected } => {
                let prior = observed.expect("a CAS observes the prior value");
                if prior == expected || prior >= self.proposal {
                    // Landed, or the replica already holds >= ours —
                    // either way this replica is covered.
                    self.begin_install(j + 1);
                } else {
                    self.phase = Phase::Install { j, expected: prior };
                }
            }
            Phase::Done => panic!("observe called on a completed machine"),
        }
    }

    fn may_read(&self) -> Option<Vec<usize>> {
        // CAS observations count as reads. While still reading, the
        // sound over-approximation is the whole read window (the write
        // window is a prefix of it, and installs on already-read slots
        // are still ahead); mid-install it shrinks to the remaining
        // write window.
        let range = match &self.phase {
            Phase::Read { .. } => 0..self.read_quorum,
            Phase::Install { j, .. } => *j..self.write_quorum,
            Phase::Done => 0..0,
        };
        Some(range.map(|i| self.reg(i)).collect())
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        let range = match &self.phase {
            Phase::Read { .. } => 0..self.write_quorum,
            Phase::Install { j, .. } => *j..self.write_quorum,
            Phase::Done => 0..0,
        };
        Some(range.map(|i| self.reg(i)).collect())
    }
}

/// The replicated timestamp algorithm over `2f + 1` replica-registers;
/// the model twin of [`QuorumTs`](crate::QuorumTs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumModel {
    n: usize,
    f: usize,
    write_quorum: usize,
}

impl QuorumModel {
    /// Correct protocol for `n` processes tolerating `f` failures:
    /// read and write quorums of `f + 1` over `2f + 1` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, f: usize) -> Self {
        Self::with_write_quorum(n, f, f + 1)
    }

    /// The deliberately broken variant: writes land on one replica.
    pub fn broken(n: usize, f: usize) -> Self {
        Self::with_write_quorum(n, f, 1)
    }

    /// Explicit write-quorum size (`1..=f + 1`).
    pub fn with_write_quorum(n: usize, f: usize, write_quorum: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(
            (1..=f + 1).contains(&write_quorum),
            "write quorum must be in 1..=f+1"
        );
        Self { n, f, write_quorum }
    }

    /// Tolerated failures.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Whether the quorums intersect (the protocol is correct).
    pub fn is_correct(&self) -> bool {
        self.write_quorum == self.f + 1
    }
}

impl Algorithm for QuorumModel {
    type Machine = QuorumMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        2 * self.f + 1
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> QuorumMachine {
        assert!(pid < self.n, "pid {pid} out of range");
        QuorumMachine::new(pid, self.registers(), self.f + 1, self.write_quorum)
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        let r = self.registers();
        Some((0..self.f + 1).map(|i| (pid + i) % r).collect())
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        let r = self.registers();
        Some((0..self.write_quorum).map(|i| (pid + i) % r).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{CacheMode, Explorer, System};

    /// Runs `pid` solo until its current op completes, returning the
    /// output.
    fn run_solo(sys: &mut System<QuorumModel>, pid: usize) -> Timestamp {
        loop {
            match sys.step(pid).expect("step") {
                ts_model::StepOutcome::Completed { output } => return output,
                _ => continue,
            }
        }
    }

    #[test]
    fn sequential_calls_count_up() {
        let mut sys = System::new(QuorumModel::new(2, 1));
        let a = run_solo(&mut sys, 0);
        let b = run_solo(&mut sys, 1);
        let c = run_solo(&mut sys, 0);
        assert_eq!(a, Timestamp::scalar(1));
        assert_eq!(b, Timestamp::scalar(2));
        assert_eq!(c, Timestamp::scalar(3));
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn correct_quorums_pass_exhaustive_exploration() {
        let report = Explorer::new(QuorumModel::new(2, 1), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert!(report.executions > 0);
    }

    #[test]
    fn broken_write_quorum_yields_a_counterexample() {
        let model = QuorumModel::broken(2, 1);
        let report = Explorer::new(model, 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .run();
        let violation = report.violation.expect("wq=1 must violate");
        // The schedule reproduces deterministically.
        let report2 = Explorer::new(model, 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .run();
        assert_eq!(
            report2.violation.expect("still violates").schedule,
            violation.schedule
        );
    }

    #[test]
    fn dpor_agrees_with_the_ground_truth_on_the_broken_model() {
        let model = QuorumModel::broken(2, 1);
        let full = Explorer::new(model, 1).with_cache(CacheMode::None).run();
        let dpor = Explorer::new(model, 1).run();
        assert_eq!(full.violation.is_some(), dpor.violation.is_some());
    }

    #[test]
    fn footprints_cover_the_rotation_windows() {
        let model = QuorumModel::new(2, 1);
        assert_eq!(model.op_may_read(0), Some(vec![0, 1]));
        assert_eq!(model.op_may_read(1), Some(vec![1, 2]));
        assert_eq!(model.op_may_write(1), Some(vec![1, 2]));
        let broken = QuorumModel::broken(2, 1);
        assert_eq!(broken.op_may_write(1), Some(vec![1]));

        let machine = model.invoke(1, 0);
        assert_eq!(machine.may_read(), Some(vec![1, 2]));
        assert_eq!(machine.may_write(), Some(vec![1, 2]));
    }

    #[test]
    fn machine_retries_a_lost_cas_with_the_observed_value() {
        let mut m = QuorumModel::new(1, 1).invoke(0, 0);
        // Reads of replicas 0 and 1 observe 0 → proposal 1.
        m.observe(Some(0));
        m.observe(Some(0));
        match m.poised() {
            Poised::Cas { reg, expected, new } => {
                assert_eq!((reg, expected, new), (0, 0, 1));
            }
            other => panic!("expected a CAS, got {other:?}"),
        }
        // Someone raced the register from 0 to 5: retry... no — 5 >= 1
        // means the replica is already past us; move on.
        m.observe(Some(5));
        match m.poised() {
            Poised::Cas { reg, expected, .. } => assert_eq!((reg, expected), (1, 0)),
            other => panic!("expected the second install, got {other:?}"),
        }
        m.observe(Some(0));
        assert_eq!(m.poised(), Poised::Done(Timestamp::scalar(1)));
    }
}
