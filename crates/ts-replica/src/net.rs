//! The modelled network: a seeded, fault-injecting in-process router.
//!
//! Every message between quorum clients and replicas flows through one
//! [`Router`] (the in-process reproduction of `dist-register`'s
//! `network/modelled.rs`). The router is *thread-free*: it owns no
//! event loop. Clients push sends and then **pump** — each pump
//! delivers exactly one in-flight message, chosen by the seeded fault
//! plan — so delivery order is a deterministic function of the seed
//! and the pump sequence. Replica handlers run inline on the pumping
//! thread.
//!
//! # Fault knobs ([`FaultPlan`])
//!
//! | knob | effect |
//! |---|---|
//! | `seed` | SplitMix64 stream deciding every probabilistic choice |
//! | `drop_permille` | per-message loss probability (‰), rolled at send |
//! | `dup_permille` | per-message duplication probability (‰) |
//! | `delay_max` | extra delivery ticks, uniform in `0..=delay_max` |
//! | `reorder` | deliver a random eligible message instead of FIFO |
//! | `record_log` | keep the delivered-message log for diffing |
//!
//! Partitions are dynamic (not part of the plan):
//! [`Router::partition`] isolates a replica set — traffic to or from
//! it is discarded at delivery time — and [`Router::heal`] reconnects
//! it. Clients survive both through retransmission.
//!
//! Crashes are dynamic too: [`Router::crash_endpoint`] marks a replica
//! crash-stopped (its traffic is discarded like a partitioned node's,
//! counted separately in [`NetStats::crash_discarded`]) and
//! [`Router::restore_endpoint`] brings it back. State loss and resync
//! on rejoin live one layer up, in
//! [`Cluster::restart`](crate::Cluster::restart).
//!
//! # The step hook
//!
//! [`Router::set_step_hook`] installs a callback invoked **before
//! every message delivery**, outside the router lock. Pointing it at
//! [`StepGate::pause`](ts_core::workload::StepGate::pause) puts each
//! delivery under controller pacing — the same barrier protocol that
//! replays memory-access schedules — so message interleavings become
//! steppable and replayable exactly like register accesses.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::Message;

/// The seeded fault schedule of a [`Router`]. See the module docs for
/// the knob table. [`FaultPlan::default`] is the fault-free plan:
/// FIFO, lossless, undelayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 stream behind every probabilistic knob.
    pub seed: u64,
    /// Per-message drop probability in permille (0..=1000).
    pub drop_permille: u16,
    /// Per-message duplication probability in permille (0..=1000).
    pub dup_permille: u16,
    /// Maximum extra delivery delay in ticks (sampled uniformly).
    pub delay_max: u8,
    /// Deliver a seeded-random eligible message instead of the oldest.
    pub reorder: bool,
    /// Record every delivered message (see [`Router::delivery_log`]).
    pub record_log: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_permille: 0,
            dup_permille: 0,
            delay_max: 0,
            reorder: false,
            record_log: false,
        }
    }
}

impl FaultPlan {
    /// Whether the plan injects any fault at all (a fault-free plan
    /// lets the cluster take its synchronous direct path).
    pub fn is_fault_free(&self) -> bool {
        self.drop_permille == 0 && self.dup_permille == 0 && self.delay_max == 0 && !self.reorder
    }
}

/// Counters the router keeps about its own mischief.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted into flight.
    pub sent: u64,
    /// Messages delivered to a handler or mailbox.
    pub delivered: u64,
    /// Messages lost to the drop knob at send time.
    pub dropped: u64,
    /// Extra copies minted by the duplicate knob.
    pub duplicated: u64,
    /// Messages discarded at delivery time because an endpoint was
    /// partitioned away.
    pub partitioned: u64,
    /// Messages that drew a nonzero extra delivery delay at send time.
    pub delayed: u64,
    /// Deliveries where the reorder knob picked a message other than
    /// the FIFO (oldest-eligible) choice.
    pub reordered: u64,
    /// Messages discarded at delivery time because an endpoint was
    /// crashed (see [`Router::crash_endpoint`]).
    pub crash_discarded: u64,
}

#[derive(Debug)]
struct Flight {
    deliver_at: u64,
    id: u64,
    msg: Message,
}

#[derive(Debug)]
struct RouterState {
    now: u64,
    next_id: u64,
    in_flight: Vec<Flight>,
    rng: StdRng,
    isolated: HashSet<u32>,
    crashed: HashSet<u32>,
    stats: NetStats,
    log: Vec<Message>,
}

/// What one pump produced: a message for a handler, silence, or proof
/// that nothing is in flight (time to retransmit).
#[derive(Debug)]
pub(crate) enum Pumped {
    /// The message to hand to its destination's handler.
    Deliver(Message),
    /// A message existed but was discarded (partitioned endpoint);
    /// the pump still made progress.
    Discarded,
    /// Nothing in flight at all.
    Idle,
}

/// Per-delivery callback type (see the module docs on the step hook).
pub type StepHook = Box<dyn Fn(&Message) + Send + Sync>;

/// The seeded fault-injecting message router. One per
/// [`Cluster`](crate::Cluster); see the module docs.
pub struct Router {
    plan: FaultPlan,
    state: Mutex<RouterState>,
    hook: Mutex<Option<StepHook>>,
    // Lock-free mirrors for the fault-free direct path: whether a hook
    // is installed, and how many replicas are isolated or crashed.
    hook_armed: AtomicBool,
    isolated_count: AtomicUsize,
    crashed_count: AtomicUsize,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("router lock");
        f.debug_struct("Router")
            .field("plan", &self.plan)
            .field("in_flight", &state.in_flight.len())
            .field("isolated", &state.isolated)
            .field("stats", &state.stats)
            .finish()
    }
}

impl Router {
    /// Creates a router executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            state: Mutex::new(RouterState {
                now: 0,
                next_id: 0,
                in_flight: Vec::new(),
                rng: StdRng::seed_from_u64(plan.seed),
                isolated: HashSet::new(),
                crashed: HashSet::new(),
                stats: NetStats::default(),
                log: Vec::new(),
            }),
            hook: Mutex::new(None),
            hook_armed: AtomicBool::new(false),
            isolated_count: AtomicUsize::new(0),
            crashed_count: AtomicUsize::new(0),
        }
    }

    /// The plan this router runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Installs (or clears) the per-delivery step hook.
    pub fn set_step_hook(&self, hook: Option<StepHook>) {
        let armed = hook.is_some();
        *self.hook.lock().expect("hook lock") = hook;
        self.hook_armed.store(armed, Ordering::Release);
    }

    /// Fires the step hook, if one is armed, for a delivery.
    pub(crate) fn fire_hook(&self, msg: &Message) {
        if self.hook_armed.load(Ordering::Acquire) {
            if let Some(hook) = self.hook.lock().expect("hook lock").as_ref() {
                hook(msg);
            }
        }
    }

    /// Isolates `replicas`: messages to or from them are discarded at
    /// delivery time until [`Router::heal`].
    pub fn partition(&self, replicas: &[u32]) {
        let mut state = self.state.lock().expect("router lock");
        state.isolated.extend(replicas.iter().copied());
        self.isolated_count
            .store(state.isolated.len(), Ordering::Release);
    }

    /// Reconnects every isolated replica.
    pub fn heal(&self) {
        let mut state = self.state.lock().expect("router lock");
        state.isolated.clear();
        self.isolated_count.store(0, Ordering::Release);
    }

    /// Reconnects one replica.
    pub fn heal_one(&self, replica: u32) {
        let mut state = self.state.lock().expect("router lock");
        state.isolated.remove(&replica);
        self.isolated_count
            .store(state.isolated.len(), Ordering::Release);
    }

    /// Marks `replica` crashed: all its traffic (both directions) is
    /// discarded at delivery time until [`Router::restore_endpoint`].
    /// Unlike a partition, a crash also implies the replica's *state*
    /// may be lost — that part is the cluster's business; the router
    /// only models unreachability.
    pub fn crash_endpoint(&self, replica: u32) {
        let mut state = self.state.lock().expect("router lock");
        state.crashed.insert(replica);
        self.crashed_count
            .store(state.crashed.len(), Ordering::Release);
    }

    /// Brings a crashed replica back onto the network.
    pub fn restore_endpoint(&self, replica: u32) {
        let mut state = self.state.lock().expect("router lock");
        state.crashed.remove(&replica);
        self.crashed_count
            .store(state.crashed.len(), Ordering::Release);
    }

    /// Whether `replica` is currently crashed (takes the lock).
    pub fn is_crashed(&self, replica: u32) -> bool {
        self.state
            .lock()
            .expect("router lock")
            .crashed
            .contains(&replica)
    }

    /// The currently crashed replica ids (sorted).
    pub fn crashed(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .state
            .lock()
            .expect("router lock")
            .crashed
            .iter()
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Lock-free "no partition right now" probe for the direct path.
    pub(crate) fn no_partition_fast(&self) -> bool {
        self.isolated_count.load(Ordering::Acquire) == 0
    }

    /// Lock-free "no crashed replica right now" probe for the direct
    /// path.
    pub(crate) fn no_crash_fast(&self) -> bool {
        self.crashed_count.load(Ordering::Acquire) == 0
    }

    /// Whether `node` is currently unreachable — isolated by a
    /// partition or crashed (takes the lock).
    pub(crate) fn is_blocked(&self, node: u32) -> bool {
        let state = self.state.lock().expect("router lock");
        state.isolated.contains(&node) || state.crashed.contains(&node)
    }

    /// The currently isolated replica ids (sorted).
    pub fn isolated(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .state
            .lock()
            .expect("router lock")
            .isolated
            .iter()
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether any replica is currently isolated.
    pub fn has_partition(&self) -> bool {
        !self.state.lock().expect("router lock").isolated.is_empty()
    }

    /// Snapshot of the router's counters.
    pub fn stats(&self) -> NetStats {
        self.state.lock().expect("router lock").stats
    }

    /// The delivered-message log (empty unless
    /// [`FaultPlan::record_log`] is set). Serializing this and diffing
    /// across runs is the seeded-schedule reproducibility check.
    pub fn delivery_log(&self) -> Vec<Message> {
        self.state.lock().expect("router lock").log.clone()
    }

    /// Accepts `msg` into flight, rolling the drop / duplicate / delay
    /// knobs.
    pub(crate) fn send(&self, msg: Message) {
        let mut state = self.state.lock().expect("router lock");
        state.stats.sent += 1;
        if self.plan.drop_permille > 0 {
            let p = u64::from(self.plan.drop_permille);
            if state.rng.random_range(0u64..1000) < p {
                state.stats.dropped += 1;
                return;
            }
        }
        let copies = if self.plan.dup_permille > 0 {
            let p = u64::from(self.plan.dup_permille);
            if state.rng.random_range(0u64..1000) < p {
                state.stats.duplicated += 1;
                2
            } else {
                1
            }
        } else {
            1
        };
        for _ in 0..copies {
            let delay = if self.plan.delay_max > 0 {
                state
                    .rng
                    .random_range(0u64..u64::from(self.plan.delay_max) + 1)
            } else {
                0
            };
            if delay > 0 {
                state.stats.delayed += 1;
            }
            let flight = Flight {
                deliver_at: state.now + 1 + delay,
                id: state.next_id,
                msg,
            };
            state.next_id += 1;
            state.in_flight.push(flight);
        }
    }

    /// Advances time and takes the next message to deliver, applying
    /// partitions. Fires the step hook (outside the lock) for messages
    /// that will reach a handler.
    pub(crate) fn pump(&self) -> Pumped {
        let taken = {
            let mut state = self.state.lock().expect("router lock");
            if state.in_flight.is_empty() {
                return Pumped::Idle;
            }
            state.now += 1;
            let now = state.now;
            let eligible: Vec<usize> = state
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, f)| f.deliver_at <= now)
                .map(|(i, _)| i)
                .collect();
            let chosen = if eligible.is_empty() {
                // Jump time to the earliest arrival instead of spinning.
                let (idx, at) = state
                    .in_flight
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (i, f.deliver_at))
                    .min_by_key(|&(i, at)| (at, state.in_flight[i].id))
                    .expect("non-empty in_flight");
                state.now = at;
                idx
            } else if self.plan.reorder && eligible.len() > 1 {
                let pick = state.rng.random_range(0usize..eligible.len());
                let fifo = *eligible
                    .iter()
                    .min_by_key(|&&i| {
                        let f = &state.in_flight[i];
                        (f.deliver_at, f.id)
                    })
                    .expect("non-empty eligible");
                if eligible[pick] != fifo {
                    state.stats.reordered += 1;
                }
                eligible[pick]
            } else {
                *eligible
                    .iter()
                    .min_by_key(|&&i| {
                        let f = &state.in_flight[i];
                        (f.deliver_at, f.id)
                    })
                    .expect("non-empty eligible")
            };
            let flight = state.in_flight.swap_remove(chosen);
            if state.crashed.contains(&flight.msg.from) || state.crashed.contains(&flight.msg.to) {
                state.stats.crash_discarded += 1;
                return Pumped::Discarded;
            }
            let blocked = state.isolated.contains(&flight.msg.from)
                || state.isolated.contains(&flight.msg.to);
            if blocked {
                state.stats.partitioned += 1;
                return Pumped::Discarded;
            }
            state.stats.delivered += 1;
            if self.plan.record_log {
                state.log.push(flight.msg);
            }
            flight.msg
        };
        self.fire_hook(&taken);
        Pumped::Deliver(taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MsgKind;

    fn msg(op: u64, to: u32) -> Message {
        Message {
            kind: MsgKind::ReadQuery,
            op,
            from: Message::CLIENT_BASE,
            to,
            reg: 0,
            seq: 0,
            writer: 0,
            word: 0,
            expected: 0,
        }
    }

    fn drain(router: &Router) -> Vec<u64> {
        let mut ops = Vec::new();
        loop {
            match router.pump() {
                Pumped::Deliver(m) => ops.push(m.op),
                Pumped::Discarded => {}
                Pumped::Idle => return ops,
            }
        }
    }

    #[test]
    fn fault_free_router_is_fifo() {
        let router = Router::new(FaultPlan::default());
        for op in 0..5 {
            router.send(msg(op, 0));
        }
        assert_eq!(drain(&router), vec![0, 1, 2, 3, 4]);
        assert_eq!(router.stats().delivered, 5);
    }

    #[test]
    fn seeded_reorder_is_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            delay_max: 4,
            reorder: true,
            ..FaultPlan::default()
        };
        let run = || {
            let router = Router::new(plan);
            for op in 0..20 {
                router.send(msg(op, (op % 3) as u32));
            }
            drain(&router)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same delivery order");
        assert_ne!(a, (0..20).collect::<Vec<_>>(), "the knobs actually reorder");
    }

    #[test]
    fn partition_discards_and_heal_restores() {
        let router = Router::new(FaultPlan::default());
        router.partition(&[1]);
        assert!(router.has_partition());
        router.send(msg(0, 1));
        router.send(msg(1, 0));
        assert_eq!(drain(&router), vec![1], "replica 1's traffic discarded");
        assert_eq!(router.stats().partitioned, 1);
        router.heal();
        assert!(!router.has_partition());
        router.send(msg(2, 1));
        assert_eq!(drain(&router), vec![2]);
    }

    #[test]
    fn drop_knob_loses_messages_at_send() {
        let plan = FaultPlan {
            seed: 7,
            drop_permille: 500,
            ..FaultPlan::default()
        };
        let router = Router::new(plan);
        for op in 0..200 {
            router.send(msg(op, 0));
        }
        let delivered = drain(&router).len() as u64;
        let stats = router.stats();
        assert_eq!(stats.sent, 200);
        assert_eq!(stats.dropped + delivered, 200);
        assert!(stats.dropped > 50 && stats.dropped < 150, "{stats:?}");
    }

    #[test]
    fn dup_knob_delivers_twice() {
        let plan = FaultPlan {
            seed: 3,
            dup_permille: 1000,
            ..FaultPlan::default()
        };
        let router = Router::new(plan);
        router.send(msg(0, 0));
        assert_eq!(drain(&router), vec![0, 0]);
        assert_eq!(router.stats().duplicated, 1);
    }

    #[test]
    fn crashed_endpoint_discards_until_restored() {
        let router = Router::new(FaultPlan::default());
        router.crash_endpoint(1);
        assert!(router.is_crashed(1));
        assert_eq!(router.crashed(), vec![1]);
        assert!(!router.no_crash_fast());
        router.send(msg(0, 1)); // to the crashed replica
        router.send(msg(1, 0)); // unrelated traffic flows
        assert_eq!(drain(&router), vec![1]);
        assert_eq!(router.stats().crash_discarded, 1);
        assert_eq!(router.stats().partitioned, 0, "crash is not a partition");
        router.restore_endpoint(1);
        assert!(router.no_crash_fast());
        router.send(msg(2, 1));
        assert_eq!(drain(&router), vec![2]);
    }

    #[test]
    fn delay_and_reorder_counters_track_the_knobs() {
        let plan = FaultPlan {
            seed: 42,
            delay_max: 4,
            reorder: true,
            ..FaultPlan::default()
        };
        let router = Router::new(plan);
        for op in 0..50 {
            router.send(msg(op, 0));
        }
        let delivered = drain(&router);
        assert_eq!(delivered.len(), 50);
        let stats = router.stats();
        assert!(stats.delayed > 0, "delay_max > 0 must delay something");
        assert!(stats.reordered > 0, "the reorder knob must fire");
        assert!(stats.reordered < 50, "FIFO picks are not counted");
    }

    #[test]
    fn step_hook_sees_every_delivery() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let router = Router::new(FaultPlan::default());
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        router.set_step_hook(Some(Box::new(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        })));
        for op in 0..3 {
            router.send(msg(op, 0));
        }
        drain(&router);
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }
}
